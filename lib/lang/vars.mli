(** Variable and semaphore usage analyses over the AST.

    These traversals back both the certification mechanism ([mod] needs the
    modified-variable set) and the well-formedness checks. Semaphores count
    as variables here — a [wait]/[signal] modifies its semaphore, exactly
    as the paper treats semaphore operations as assignments. *)

val expr_vars : Ast.expr -> Ifc_support.Sset.t
(** [expr_vars e] is the set of variables read by [e]. *)

val modified : Ast.stmt -> Ifc_support.Sset.t
(** [modified s] is the set of variables *potentially* modified by [s]:
    assignment targets and semaphores of [wait]/[signal], through all
    branches (Definition 5a's "potentially modified"). *)

val read : Ast.stmt -> Ifc_support.Sset.t
(** [read s] is the set of variables appearing in expressions of [s];
    semaphores of [wait]/[signal] are also read (their count is tested). *)

val all_vars : Ast.stmt -> Ifc_support.Sset.t
(** [read s ∪ modified s]. *)

val semaphores : Ast.stmt -> Ifc_support.Sset.t
(** Names used in [wait]/[signal] position. *)

val channels : Ast.stmt -> Ifc_support.Sset.t
(** Names used in [send]/[recv] channel position. *)

val declared :
  Ast.program ->
  Ifc_support.Sset.t * Ifc_support.Sset.t * Ifc_support.Sset.t * Ifc_support.Sset.t
(** [declared p] is [(integer variables, arrays, semaphores, channels)]. *)
