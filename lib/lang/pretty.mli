(** Pretty-printer for programs, statements and expressions.

    Output re-parses to a structurally equal AST ([parse ∘ print = id] up
    to spans) — a property the test suite checks on random programs. The
    printer emits the same concrete syntax the parser reads: [begin/end]
    blocks, [cobegin .. || .. coend], keyword boolean connectives. *)

val pp_expr : Format.formatter -> Ast.expr -> unit

val pp_stmt : Format.formatter -> Ast.stmt -> unit

val pp_decl : Format.formatter -> Ast.decl -> unit

val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string

val stmt_to_string : Ast.stmt -> string

val program_to_string : Ast.program -> string

val pp_module_unit : Format.formatter -> Ast.module_unit -> unit

val pp_linked : Format.formatter -> Ast.linked -> unit

val linked_to_string : Ast.linked -> string
(** [linked_to_string l] renders a linked unit; like {!program_to_string}
    it round-trips through {!Parser.parse_linked} and is the canonical
    form module digests are computed over. An empty unit (no modules, no
    main) prints as [skip] so the digest basis is never the empty
    string. *)
