(* Recursive-descent parser. See the interface for the grammar. *)

type error = { message : string; pos : Loc.pos }

let pp_error ppf e = Fmt.pf ppf "%a: %s" Loc.pp_pos e.pos e.message

exception Parse_error of error

type state = { tokens : Lexer.spanned array; mutable cursor : int }

let current st = st.tokens.(st.cursor)

let peek st = (current st).token

let peek_at st n =
  let i = st.cursor + n in
  if i < Array.length st.tokens then st.tokens.(i).token else Token.EOF

let here st = (current st).span.start

let advance st = if st.cursor < Array.length st.tokens - 1 then st.cursor <- st.cursor + 1

let fail st message = raise (Parse_error { message; pos = here st })

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected '%s' but found '%s'" (Token.to_string tok)
         (Token.to_string (peek st)))

let expect_ident st what =
  match peek st with
  | Token.IDENT name ->
    advance st;
    name
  | other ->
    fail st (Printf.sprintf "expected %s but found '%s'" what (Token.to_string other))

let expect_int st what =
  match peek st with
  | Token.INT n ->
    advance st;
    n
  | other ->
    fail st (Printf.sprintf "expected %s but found '%s'" what (Token.to_string other))

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec parse_or st =
  let left = parse_and st in
  if peek st = Token.KW_OR then begin
    advance st;
    Ast.Binop (Ast.Or, left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_not st in
  if peek st = Token.KW_AND then begin
    advance st;
    Ast.Binop (Ast.And, left, parse_and st)
  end
  else left

and parse_not st =
  if peek st = Token.KW_NOT then begin
    advance st;
    Ast.Unop (Ast.Not, parse_not st)
  end
  else parse_rel st

and parse_rel st =
  let left = parse_add st in
  let op =
    match peek st with
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
    advance st;
    Ast.Binop (op, left, parse_add st)

and parse_add st =
  let rec loop left =
    match peek st with
    | Token.PLUS ->
      advance st;
      loop (Ast.Binop (Ast.Add, left, parse_mul st))
    | Token.MINUS ->
      advance st;
      loop (Ast.Binop (Ast.Sub, left, parse_mul st))
    | _ -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek st with
    | Token.STAR ->
      advance st;
      loop (Ast.Binop (Ast.Mul, left, parse_unary st))
    | Token.SLASH ->
      advance st;
      loop (Ast.Binop (Ast.Div, left, parse_unary st))
    | Token.PERCENT ->
      advance st;
      loop (Ast.Binop (Ast.Mod, left, parse_unary st))
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st =
  if peek st = Token.MINUS then begin
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  end
  else parse_atom st

and parse_atom st =
  match peek st with
  | Token.INT n ->
    advance st;
    Ast.Int n
  | Token.KW_TRUE ->
    advance st;
    Ast.Bool true
  | Token.KW_FALSE ->
    advance st;
    Ast.Bool false
  | Token.IDENT name ->
    advance st;
    if peek st = Token.LBRACKET then begin
      advance st;
      let i = parse_or st in
      expect st Token.RBRACKET;
      Ast.Index (name, i)
    end
    else Ast.Var name
  | Token.LPAREN ->
    advance st;
    let e = parse_or st in
    expect st Token.RPAREN;
    e
  | other ->
    fail st (Printf.sprintf "expected an expression but found '%s'" (Token.to_string other))

let parse_expression st = parse_or st

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec parse_statement st =
  let start = here st in
  let finish node =
    let stop = (st.tokens.(max 0 (st.cursor - 1))).span.stop in
    { Ast.span = Loc.make ~start ~stop; node }
  in
  match peek st with
  | Token.KW_SKIP ->
    advance st;
    finish Ast.Skip
  | Token.IDENT name ->
    advance st;
    if peek st = Token.LBRACKET then begin
      advance st;
      let i = parse_expression st in
      expect st Token.RBRACKET;
      expect st Token.ASSIGN;
      let e = parse_expression st in
      finish (Ast.Store (name, i, e))
    end
    else begin
      expect st Token.ASSIGN;
      if peek st = Token.KW_DECLASSIFY then begin
        advance st;
        let e = parse_expression st in
        expect st Token.KW_TO;
        let cls = expect_ident st "a class name" in
        finish (Ast.Declassify (name, e, cls))
      end
      else begin
        let e = parse_expression st in
        finish (Ast.Assign (name, e))
      end
    end
  | Token.KW_IF ->
    advance st;
    let cond = parse_expression st in
    expect st Token.KW_THEN;
    let then_ = parse_statement st in
    let else_ =
      if peek st = Token.KW_ELSE then begin
        advance st;
        parse_statement st
      end
      else Ast.skip
    in
    if peek st = Token.KW_FI then advance st;
    finish (Ast.If (cond, then_, else_))
  | Token.KW_WHILE ->
    advance st;
    let cond = parse_expression st in
    expect st Token.KW_DO;
    let body = parse_statement st in
    if peek st = Token.KW_OD then advance st;
    finish (Ast.While (cond, body))
  | Token.KW_BEGIN ->
    advance st;
    let stmts = parse_separated st Token.SEMI in
    expect st Token.KW_END;
    finish (Ast.Seq stmts)
  | Token.KW_COBEGIN ->
    advance st;
    let branches = parse_separated st Token.PAR in
    expect st Token.KW_COEND;
    finish (Ast.Cobegin branches)
  | Token.KW_WAIT ->
    advance st;
    expect st Token.LPAREN;
    let sem = expect_ident st "a semaphore name" in
    expect st Token.RPAREN;
    finish (Ast.Wait sem)
  | Token.KW_SIGNAL ->
    advance st;
    expect st Token.LPAREN;
    let sem = expect_ident st "a semaphore name" in
    expect st Token.RPAREN;
    finish (Ast.Signal sem)
  | Token.KW_SEND ->
    advance st;
    expect st Token.LPAREN;
    let chan = expect_ident st "a channel name" in
    expect st Token.COMMA;
    let e = parse_expression st in
    expect st Token.RPAREN;
    finish (Ast.Send (chan, e))
  | Token.KW_RECV ->
    advance st;
    expect st Token.LPAREN;
    let chan = expect_ident st "a channel name" in
    expect st Token.COMMA;
    let x = expect_ident st "a variable name" in
    expect st Token.RPAREN;
    finish (Ast.Recv (chan, x))
  | other ->
    fail st (Printf.sprintf "expected a statement but found '%s'" (Token.to_string other))

and parse_separated st sep =
  let first = parse_statement st in
  let rec loop acc =
    if peek st = sep then begin
      advance st;
      let next = parse_statement st in
      loop (next :: acc)
    end
    else List.rev acc
  in
  loop [ first ]

(* ------------------------------------------------------------------ *)
(* Declarations *)

(* After 'var', groups look like "x, y : integer;". A group is recognised
   by an identifier followed by ',' or ':' — an identifier followed by ':='
   starts the program body instead. *)
let looks_like_group st =
  match peek st with
  | Token.IDENT _ -> ( match peek_at st 1 with Token.COMMA | Token.COLON -> true | _ -> false)
  | _ -> false

let parse_class_annotation st =
  if peek st = Token.KW_CLASS then begin
    advance st;
    Some (expect_ident st "a class name")
  end
  else None

let parse_group st =
  let rec names acc =
    let name = expect_ident st "a variable name" in
    if peek st = Token.COMMA then begin
      advance st;
      names (name :: acc)
    end
    else List.rev (name :: acc)
  in
  let names = names [] in
  expect st Token.COLON;
  match peek st with
  | Token.KW_INTEGER ->
    advance st;
    let cls = parse_class_annotation st in
    List.map (fun name -> Ast.Var_decl { name; cls }) names
  | Token.KW_ARRAY ->
    advance st;
    expect st Token.LPAREN;
    let size = expect_int st "an array size" in
    expect st Token.RPAREN;
    let cls = parse_class_annotation st in
    List.map (fun name -> Ast.Arr_decl { name; size; cls }) names
  | Token.KW_SEMAPHORE ->
    advance st;
    expect st Token.KW_INITIALLY;
    expect st Token.LPAREN;
    let init = expect_int st "an initial semaphore count" in
    expect st Token.RPAREN;
    let cls = parse_class_annotation st in
    List.map (fun name -> Ast.Sem_decl { name; init; cls }) names
  | Token.KW_CHANNEL ->
    advance st;
    expect st Token.LPAREN;
    let cap = expect_int st "a channel capacity" in
    expect st Token.RPAREN;
    let cls = parse_class_annotation st in
    List.map (fun name -> Ast.Chan_decl { name; cap; cls }) names
  | other ->
    fail st
      (Printf.sprintf
         "expected 'integer', 'array', 'semaphore' or 'channel' but found '%s'"
         (Token.to_string other))

let parse_decls st =
  if peek st = Token.KW_VAR then begin
    advance st;
    let rec groups acc =
      let group = parse_group st in
      expect st Token.SEMI;
      if looks_like_group st then groups (acc @ group) else acc @ group
    in
    groups []
  end
  else []

(* ------------------------------------------------------------------ *)
(* Modules *)

(* 'provides (x : class <= k, ...)' / 'requires (y : class >= k, ...)'.
   The bound direction is part of the syntax: exports carry upper bounds
   (readers may assume at most [k]), imports carry lower bounds (the
   linker must supply at least [k]) — using the wrong relation is a parse
   error, not a silent reinterpretation. *)
let parse_iface_entries st ~bound =
  expect st Token.LPAREN;
  let entry () =
    let iv_name = expect_ident st "a variable name" in
    expect st Token.COLON;
    expect st Token.KW_CLASS;
    expect st bound;
    let iv_class = expect_ident st "a class name" in
    { Ast.iv_name; iv_class }
  in
  let rec loop acc =
    let e = entry () in
    if peek st = Token.COMMA then begin
      advance st;
      loop (e :: acc)
    end
    else List.rev (e :: acc)
  in
  let entries = loop [] in
  expect st Token.RPAREN;
  entries

let parse_module_unit st =
  expect st Token.KW_MODULE;
  let m_name = expect_ident st "a module name" in
  let provides =
    if peek st = Token.KW_PROVIDES then begin
      advance st;
      parse_iface_entries st ~bound:Token.LE
    end
    else []
  in
  let requires =
    if peek st = Token.KW_REQUIRES then begin
      advance st;
      parse_iface_entries st ~bound:Token.GE
    end
    else []
  in
  let m_decls = parse_decls st in
  let m_body = parse_statement st in
  expect st Token.KW_END;
  { Ast.iface = { Ast.m_name; provides; requires }; m_decls; m_body }

let parse_linked_unit st =
  let rec modules acc =
    if peek st = Token.KW_MODULE then modules (parse_module_unit st :: acc)
    else List.rev acc
  in
  let modules = modules [] in
  let main =
    if peek st = Token.EOF then None
    else begin
      let decls = parse_decls st in
      let body = parse_statement st in
      Some { Ast.decls; body }
    end
  in
  { Ast.modules; main }

(* ------------------------------------------------------------------ *)
(* Entry points *)

let run src entry =
  match Lexer.tokenize src with
  | Error e -> Error { message = e.Lexer.message; pos = e.Lexer.pos }
  | Ok tokens -> (
    let st = { tokens = Array.of_list tokens; cursor = 0 } in
    match entry st with
    | result ->
      if peek st = Token.EOF then Ok result
      else
        Error
          {
            message =
              Printf.sprintf "trailing input starting at '%s'" (Token.to_string (peek st));
            pos = here st;
          }
    | exception Parse_error e -> Error e)

let parse_program src =
  run src (fun st ->
      let decls = parse_decls st in
      let body = parse_statement st in
      { Ast.decls; body })

let parse_stmt src = run src parse_statement

let parse_expr src = run src parse_expression

let parse_linked src = run src parse_linked_unit

(* Cheap syntactic dispatch for loaders that accept either form: a linked
   unit begins with the 'module' keyword (possibly after whitespace and
   comments, which the lexer strips). *)
let looks_linked src =
  match Lexer.tokenize src with
  | Error _ -> false
  | Ok tokens -> (
    match tokens with { Lexer.token = Token.KW_MODULE; _ } :: _ -> true | _ -> false)
