(* Size and shape metrics. *)

type t = {
  statements : int;
  assignments : int;
  branches : int;
  loops : int;
  cobegins : int;
  sync_ops : int;
  max_depth : int;
  max_width : int;
  expr_nodes : int;
}

let zero =
  {
    statements = 0;
    assignments = 0;
    branches = 0;
    loops = 0;
    cobegins = 0;
    sync_ops = 0;
    max_depth = 0;
    max_width = 0;
    expr_nodes = 0;
  }

let rec expr_size = function
  | Ast.Int _ | Ast.Bool _ | Ast.Var _ -> 1
  | Ast.Index (_, i) -> 1 + expr_size i
  | Ast.Unop (_, e) -> 1 + expr_size e
  | Ast.Binop (_, a, b) -> 1 + expr_size a + expr_size b

let add a b =
  {
    statements = a.statements + b.statements;
    assignments = a.assignments + b.assignments;
    branches = a.branches + b.branches;
    loops = a.loops + b.loops;
    cobegins = a.cobegins + b.cobegins;
    sync_ops = a.sync_ops + b.sync_ops;
    max_depth = max a.max_depth b.max_depth;
    max_width = max a.max_width b.max_width;
    expr_nodes = a.expr_nodes + b.expr_nodes;
  }

let rec of_stmt (s : Ast.stmt) =
  let self = { zero with statements = 1 } in
  let deepen m = { m with max_depth = m.max_depth + 1 } in
  match s.node with
  | Ast.Skip -> { self with max_depth = 1 }
  | Ast.Assign (_, e) | Ast.Declassify (_, e, _) ->
    { self with assignments = 1; expr_nodes = expr_size e; max_depth = 1 }
  | Ast.Store (_, i, e) ->
    { self with assignments = 1; expr_nodes = expr_size i + expr_size e; max_depth = 1 }
  | Ast.Wait _ | Ast.Signal _ -> { self with sync_ops = 1; max_depth = 1 }
  | Ast.Send (_, e) ->
    { self with sync_ops = 1; expr_nodes = expr_size e; max_depth = 1 }
  | Ast.Recv _ -> { self with sync_ops = 1; max_depth = 1 }
  | Ast.If (cond, then_, else_) ->
    let inner = add (of_stmt then_) (of_stmt else_) in
    deepen
      (add { self with branches = 1; expr_nodes = expr_size cond } inner)
  | Ast.While (cond, body) ->
    deepen (add { self with loops = 1; expr_nodes = expr_size cond } (of_stmt body))
  | Ast.Seq stmts ->
    deepen (List.fold_left (fun acc s -> add acc (of_stmt s)) self stmts)
  | Ast.Cobegin branches ->
    let inner = List.fold_left (fun acc s -> add acc (of_stmt s)) self branches in
    deepen
      {
        inner with
        cobegins = inner.cobegins + 1;
        max_width = max inner.max_width (List.length branches);
      }

let of_program (p : Ast.program) = of_stmt p.body

let length p =
  let m = of_program p in
  m.statements + m.expr_nodes

let of_linked (l : Ast.linked) =
  let bodies = List.map (fun (m : Ast.module_unit) -> of_stmt m.m_body) l.modules in
  let main = match l.main with None -> zero | Some p -> of_program p in
  List.fold_left add main bodies

(** Interface size: the number of provides + requires entries across the
    unit — the quantity linked certification cost should scale with. *)
let interface_size (l : Ast.linked) =
  List.fold_left
    (fun acc (m : Ast.module_unit) ->
      acc + List.length m.iface.provides + List.length m.iface.requires)
    0 l.modules

let pp ppf m =
  Fmt.pf ppf
    "@[<v>statements: %d@ assignments: %d@ branches: %d@ loops: %d@ cobegins: %d@ \
     sync-ops: %d@ max-depth: %d@ max-width: %d@ expr-nodes: %d@]"
    m.statements m.assignments m.branches m.loops m.cobegins m.sync_ops m.max_depth
    m.max_width m.expr_nodes
