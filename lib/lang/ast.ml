(** Abstract syntax of the paper's parallel programming language (§2).

    The statement forms are exactly those of the paper — assignment,
    alternation, iteration, composition, concurrency ([cobegin .. || ..
    coend]) and semaphore synchronization ([wait]/[signal]) — plus [skip],
    which the paper omits but which makes [if]-without-[else] and program
    generation natural. [skip] modifies nothing and produces no flow, so it
    is certification-neutral (see DESIGN.md §3).

    Expressions are integer/boolean arithmetic over program variables; the
    class of [e1 op e2] is [class e1 ⊕ class e2] regardless of [op]
    (Definition 2), so the analysis never inspects operators.

    This module also provides combinators ([assign], [if_], [seq], ...)
    used by examples and tests to build programs without going through the
    parser. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not

type expr =
  | Int of int
  | Bool of bool
  | Var of string
  | Index of string * expr  (** [a\[i\]]: array read. *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

type stmt = { span : Loc.span; node : node }

and node =
  | Skip
  | Assign of string * expr
  | Declassify of string * expr * string
      (** [x := declassify e to c]: like [Assign], but the analyses take
          the *data* class of [e] to be the named class [c] instead of its
          computed class. Contexts ([local]/[global]) still apply — the
          escape hatch releases data, not control. An extension beyond the
          paper; see DESIGN.md. *)
  | Store of string * expr * expr  (** [a\[i\] := e]: array write. The whole
      array is the classified object (Denning's treatment): the index
      contributes to the stored class and writes are weak updates. *)
  | If of expr * stmt * stmt
  | While of expr * stmt
  | Seq of stmt list
  | Cobegin of stmt list
  | Wait of string
  | Signal of string
  | Send of string * expr
      (** [send(c, e)]: blocking send of [e] on channel [c]. Blocks while
          the channel holds [cap] undelivered messages. Flow-wise a [send]
          is an assignment into the channel (the payload's class must flow
          to the channel's class) that also signals: it can unblock a
          [recv], so the channel's class joins the receiver's [global]. *)
  | Recv of string * string
      (** [recv(c, x)]: blocking receive from channel [c] into variable
          [x]. Blocks on an empty channel — a [wait] whose class is the
          channel's — then assigns the delivered message to [x]. *)

(** Declarations: integer variables and semaphores with an initial count.
    [cls] is an optional class annotation (resolved against a lattice by
    [Ifc_core.Binding]). Channels carry a capacity: the number of sent but
    not yet received messages a [send] tolerates before blocking. *)
type decl =
  | Var_decl of { name : string; cls : string option }
  | Arr_decl of { name : string; size : int; cls : string option }
  | Sem_decl of { name : string; init : int; cls : string option }
  | Chan_decl of { name : string; cap : int; cls : string option }

type program = { decls : decl list; body : stmt }

(** Module interfaces (compositional certification). A module names the
    variables it exports with an upper class bound ([provides (x : class
    <= k)]: readers may assume [cls(x) <= k]) and the variables it
    imports with a lower class bound ([requires (y : class >= k')]: the
    linker must supply [y] at class at least [k']). Bounds are class
    {e names}, resolved against a lattice by the module system — the
    syntax layer stays scheme-agnostic, exactly like [decl] class
    annotations. *)
type iface_entry = { iv_name : string; iv_class : string }

type iface = {
  m_name : string;
  provides : iface_entry list;
  requires : iface_entry list;
}

(** A module: its interface, its own declarations and its body. Imports
    ([requires]) are deliberately {e not} declared — they resolve at link
    time against another module's export or the main program's
    declarations. *)
type module_unit = { iface : iface; m_decls : decl list; m_body : stmt }

(** A linked compilation unit: modules followed by an optional main
    program. Its execution (and whole-program certification reference)
    is the {e elaboration}: all declarations merged, bodies composed
    sequentially — see [Ifc_modsys.Link.elaborate]. *)
type linked = { modules : module_unit list; main : program option }

(* ------------------------------------------------------------------ *)
(* Combinators *)

let mk ?(span = Loc.dummy) node = { span; node }

let skip = mk Skip

let assign ?span x e = mk ?span (Assign (x, e))

let store ?span a i e = mk ?span (Store (a, i, e))

let declassify ?span x e cls = mk ?span (Declassify (x, e, cls))

let if_ ?span cond ~then_ ~else_ = mk ?span (If (cond, then_, else_))

let if_then ?span cond then_ = mk ?span (If (cond, then_, skip))

let while_ ?span cond body = mk ?span (While (cond, body))

let seq ?span stmts = mk ?span (Seq stmts)

let cobegin ?span branches = mk ?span (Cobegin branches)

let wait ?span sem = mk ?span (Wait sem)

let signal ?span sem = mk ?span (Signal sem)

let send ?span chan e = mk ?span (Send (chan, e))

let recv ?span chan x = mk ?span (Recv (chan, x))

let var x = Var x

let int n = Int n

(** Infix expression builders; open locally ([Ast.Infix.(var "x" + int 1)])
    to keep the arithmetic operators from shadowing the standard ones. *)
module Infix = struct
  let ( + ) a b = Binop (Add, a, b)

  let ( - ) a b = Binop (Sub, a, b)

  let ( * ) a b = Binop (Mul, a, b)

  let ( = ) a b = Binop (Eq, a, b)

  let ( <> ) a b = Binop (Ne, a, b)

  let ( < ) a b = Binop (Lt, a, b)

  let ( > ) a b = Binop (Gt, a, b)

  let ( && ) a b = Binop (And, a, b)

  let ( || ) a b = Binop (Or, a, b)
end

(** [program ?decls body] packs a program; undeclared variables can be
    added later by {!Wellformed.infer_decls}. *)
let program ?(decls = []) body = { decls; body }

(* ------------------------------------------------------------------ *)
(* Structural equality and size, ignoring spans. *)

let rec equal_expr a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Var x, Var y -> String.equal x y
  | Index (x, i), Index (y, j) -> String.equal x y && equal_expr i j
  | Unop (op1, e1), Unop (op2, e2) -> Stdlib.( = ) op1 op2 && equal_expr e1 e2
  | Binop (op1, a1, b1), Binop (op2, a2, b2) ->
    Stdlib.( = ) op1 op2 && equal_expr a1 a2 && equal_expr b1 b2
  | (Int _ | Bool _ | Var _ | Index _ | Unop _ | Binop _), _ -> false

let rec equal_stmt s1 s2 =
  match (s1.node, s2.node) with
  | Skip, Skip -> true
  | Assign (x1, e1), Assign (x2, e2) -> String.equal x1 x2 && equal_expr e1 e2
  | Declassify (x1, e1, c1), Declassify (x2, e2, c2) ->
    String.equal x1 x2 && equal_expr e1 e2 && String.equal c1 c2
  | Store (a1, i1, e1), Store (a2, i2, e2) ->
    String.equal a1 a2 && equal_expr i1 i2 && equal_expr e1 e2
  | If (c1, t1, f1), If (c2, t2, f2) ->
    equal_expr c1 c2 && equal_stmt t1 t2 && equal_stmt f1 f2
  | While (c1, b1), While (c2, b2) -> equal_expr c1 c2 && equal_stmt b1 b2
  | Seq l1, Seq l2 | Cobegin l1, Cobegin l2 ->
    List.length l1 = List.length l2 && List.for_all2 equal_stmt l1 l2
  | Wait s1, Wait s2 | Signal s1, Signal s2 -> String.equal s1 s2
  | Send (c1, e1), Send (c2, e2) -> String.equal c1 c2 && equal_expr e1 e2
  | Recv (c1, x1), Recv (c2, x2) -> String.equal c1 c2 && String.equal x1 x2
  | ( ( Skip | Assign _ | Declassify _ | Store _ | If _ | While _ | Seq _ | Cobegin _
      | Wait _ | Signal _ | Send _ | Recv _ ),
      _ ) ->
    false

let equal_decl d1 d2 =
  match (d1, d2) with
  | Var_decl a, Var_decl b -> String.equal a.name b.name && Stdlib.( = ) a.cls b.cls
  | Arr_decl a, Arr_decl b ->
    String.equal a.name b.name && Int.equal a.size b.size && Stdlib.( = ) a.cls b.cls
  | Sem_decl a, Sem_decl b ->
    String.equal a.name b.name && Int.equal a.init b.init && Stdlib.( = ) a.cls b.cls
  | Chan_decl a, Chan_decl b ->
    String.equal a.name b.name && Int.equal a.cap b.cap && Stdlib.( = ) a.cls b.cls
  | (Var_decl _ | Arr_decl _ | Sem_decl _ | Chan_decl _), _ -> false

let equal_program p1 p2 =
  List.length p1.decls = List.length p2.decls
  && List.for_all2 equal_decl p1.decls p2.decls
  && equal_stmt p1.body p2.body

let equal_iface_entry a b =
  String.equal a.iv_name b.iv_name && String.equal a.iv_class b.iv_class

let equal_iface a b =
  String.equal a.m_name b.m_name
  && List.length a.provides = List.length b.provides
  && List.for_all2 equal_iface_entry a.provides b.provides
  && List.length a.requires = List.length b.requires
  && List.for_all2 equal_iface_entry a.requires b.requires

let equal_module_unit a b =
  equal_iface a.iface b.iface
  && List.length a.m_decls = List.length b.m_decls
  && List.for_all2 equal_decl a.m_decls b.m_decls
  && equal_stmt a.m_body b.m_body

let equal_linked a b =
  List.length a.modules = List.length b.modules
  && List.for_all2 equal_module_unit a.modules b.modules
  && Option.equal equal_program a.main b.main

(** [module_program m] views a module's own declarations and body as an
    ordinary program — the unit summarization walks and component
    certificates are emitted against. *)
let module_program m = { decls = m.m_decls; body = m.m_body }
