(** Tokens of the concrete syntax. *)

type t =
  | INT of int
  | IDENT of string
  (* keywords *)
  | KW_VAR
  | KW_INTEGER
  | KW_SEMAPHORE
  | KW_ARRAY
  | KW_INITIALLY
  | KW_CLASS
  | KW_SKIP
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_FI
  | KW_WHILE
  | KW_DO
  | KW_OD
  | KW_BEGIN
  | KW_END
  | KW_COBEGIN
  | KW_COEND
  | KW_WAIT
  | KW_SIGNAL
  | KW_CHANNEL
  | KW_SEND
  | KW_RECV
  | KW_DECLASSIFY
  | KW_TO
  | KW_MODULE
  | KW_PROVIDES
  | KW_REQUIRES
  | KW_TRUE
  | KW_FALSE
  | KW_AND
  | KW_OR
  | KW_NOT
  (* punctuation and operators *)
  | ASSIGN (* := *)
  | SEMI
  | COMMA
  | COLON
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | PAR (* || *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ (* = *)
  | NE (* #, <>, != *)
  | LT
  | LE
  | GT
  | GE
  | EOF

let keywords =
  [
    ("var", KW_VAR);
    ("integer", KW_INTEGER);
    ("semaphore", KW_SEMAPHORE);
    ("array", KW_ARRAY);
    ("initially", KW_INITIALLY);
    ("class", KW_CLASS);
    ("skip", KW_SKIP);
    ("if", KW_IF);
    ("then", KW_THEN);
    ("else", KW_ELSE);
    ("fi", KW_FI);
    ("while", KW_WHILE);
    ("do", KW_DO);
    ("od", KW_OD);
    ("begin", KW_BEGIN);
    ("end", KW_END);
    ("cobegin", KW_COBEGIN);
    ("coend", KW_COEND);
    ("wait", KW_WAIT);
    ("signal", KW_SIGNAL);
    ("channel", KW_CHANNEL);
    ("send", KW_SEND);
    ("recv", KW_RECV);
    ("declassify", KW_DECLASSIFY);
    ("to", KW_TO);
    ("module", KW_MODULE);
    ("provides", KW_PROVIDES);
    ("requires", KW_REQUIRES);
    ("true", KW_TRUE);
    ("false", KW_FALSE);
    ("and", KW_AND);
    ("or", KW_OR);
    ("not", KW_NOT);
  ]

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_VAR -> "var"
  | KW_INTEGER -> "integer"
  | KW_SEMAPHORE -> "semaphore"
  | KW_ARRAY -> "array"
  | KW_INITIALLY -> "initially"
  | KW_CLASS -> "class"
  | KW_SKIP -> "skip"
  | KW_IF -> "if"
  | KW_THEN -> "then"
  | KW_ELSE -> "else"
  | KW_FI -> "fi"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_OD -> "od"
  | KW_BEGIN -> "begin"
  | KW_END -> "end"
  | KW_COBEGIN -> "cobegin"
  | KW_COEND -> "coend"
  | KW_WAIT -> "wait"
  | KW_SIGNAL -> "signal"
  | KW_CHANNEL -> "channel"
  | KW_SEND -> "send"
  | KW_RECV -> "recv"
  | KW_DECLASSIFY -> "declassify"
  | KW_TO -> "to"
  | KW_MODULE -> "module"
  | KW_PROVIDES -> "provides"
  | KW_REQUIRES -> "requires"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_AND -> "and"
  | KW_OR -> "or"
  | KW_NOT -> "not"
  | ASSIGN -> ":="
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | PAR -> "||"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
