(** Seeded random program generation and shrinking.

    Drives the property-based test suites (Theorem 1/2 validation,
    round-trip, noninterference) and the scaling benchmarks. Generation is
    purely a function of the PRNG state, so corpora are reproducible.

    The generator only emits well-formed programs: variables and semaphores
    are drawn from the configured pools and declarations are synthesised to
    match. Semaphore-manipulating statements are only produced when
    [allow_concurrency] is set; unmatched [wait]s are allowed (the paper's
    mechanism is indifferent to deadlock), but the interpreter-facing
    helper {!program_balanced} keeps signal counts ≥ wait counts per
    semaphore to raise the fraction of runs that terminate. *)

type config = {
  vars : string list;  (** Integer variable pool (non-empty). *)
  sems : string list;  (** Semaphore pool; may be empty. *)
  arrays : string list;  (** Array pool; may be empty. Sizes are
                             {!Wellformed.default_array_size}. *)
  chans : string list;  (** Channel pool; may be empty. Capacities are
                            {!Wellformed.default_channel_capacity}. *)
  max_depth : int;  (** Nesting bound. *)
  allow_concurrency : bool;  (** Emit [cobegin]/[wait]/[signal]/[send]/[recv]? *)
  allow_loops : bool;  (** Emit [while]? *)
  max_branch : int;  (** Max [cobegin] arity and [begin] block length. *)
}

val default : config
(** Four variables, two semaphores, depth 4, everything allowed. *)

val sequential : config
(** No concurrency and no semaphores: the Denning & Denning fragment. *)

val with_arrays : config
(** {!default} plus two arrays; indices are drawn small so most accesses
    stay in bounds. *)

val with_channels : config
(** {!default} with the semaphores swapped for two capacity-1 channels:
    processes communicate by message passing. *)

val expr : Ifc_support.Prng.t -> config -> size:int -> Ast.expr
(** [expr rng cfg ~size] draws an expression with about [size] nodes. *)

val stmt : Ifc_support.Prng.t -> config -> size:int -> Ast.stmt
(** [stmt rng cfg ~size] draws a statement with about [size] statement
    nodes, respecting [cfg.max_depth]. *)

val program : Ifc_support.Prng.t -> config -> size:int -> Ast.program
(** [stmt] wrapped with synthesised declarations. *)

val program_balanced : Ifc_support.Prng.t -> config -> size:int -> Ast.program
(** Like {!program}, but appends a compensating [signal] (and [send])
    sequence in a final parallel branch so every semaphore receives at
    least as many static signals as waits and every channel at least as
    many sends as recvs; used by interpreter-based tests. *)

val shrink_stmt : Ast.stmt -> Ast.stmt Seq.t
(** Structural shrinks: replace a statement by a sub-statement, drop block
    elements, simplify expressions. Never introduces new variables. *)

val shrink_program : Ast.program -> Ast.program Seq.t
(** Shrinks the body, re-synthesising declarations. *)
