(* Variable and semaphore usage analyses. *)

module Sset = Ifc_support.Sset

let rec expr_vars = function
  | Ast.Int _ | Ast.Bool _ -> Sset.empty
  | Ast.Var x -> Sset.singleton x
  | Ast.Index (a, i) -> Sset.add a (expr_vars i)
  | Ast.Unop (_, e) -> expr_vars e
  | Ast.Binop (_, a, b) -> Sset.union (expr_vars a) (expr_vars b)

let rec modified (s : Ast.stmt) =
  match s.node with
  | Ast.Skip -> Sset.empty
  | Ast.Assign (x, _) | Ast.Declassify (x, _, _) -> Sset.singleton x
  | Ast.Store (a, _, _) -> Sset.singleton a
  | Ast.If (_, then_, else_) -> Sset.union (modified then_) (modified else_)
  | Ast.While (_, body) -> modified body
  | Ast.Seq stmts | Ast.Cobegin stmts ->
    List.fold_left (fun acc stmt -> Sset.union acc (modified stmt)) Sset.empty stmts
  | Ast.Wait sem | Ast.Signal sem -> Sset.singleton sem
  | Ast.Send (chan, _) -> Sset.singleton chan
  | Ast.Recv (chan, x) -> Sset.add x (Sset.singleton chan)

let rec read (s : Ast.stmt) =
  match s.node with
  | Ast.Skip -> Sset.empty
  | Ast.Assign (_, e) | Ast.Declassify (_, e, _) -> expr_vars e
  | Ast.Store (_, i, e) -> Sset.union (expr_vars i) (expr_vars e)
  | Ast.If (cond, then_, else_) ->
    Sset.union (expr_vars cond) (Sset.union (read then_) (read else_))
  | Ast.While (cond, body) -> Sset.union (expr_vars cond) (read body)
  | Ast.Seq stmts | Ast.Cobegin stmts ->
    List.fold_left (fun acc stmt -> Sset.union acc (read stmt)) Sset.empty stmts
  | Ast.Wait sem | Ast.Signal sem -> Sset.singleton sem
  | Ast.Send (chan, e) -> Sset.add chan (expr_vars e)
  | Ast.Recv (chan, _) -> Sset.singleton chan

let all_vars s = Sset.union (read s) (modified s)

let rec semaphores (s : Ast.stmt) =
  match s.node with
  | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Send _
  | Ast.Recv _ ->
    Sset.empty
  | Ast.If (_, then_, else_) -> Sset.union (semaphores then_) (semaphores else_)
  | Ast.While (_, body) -> semaphores body
  | Ast.Seq stmts | Ast.Cobegin stmts ->
    List.fold_left (fun acc stmt -> Sset.union acc (semaphores stmt)) Sset.empty stmts
  | Ast.Wait sem | Ast.Signal sem -> Sset.singleton sem

let rec channels (s : Ast.stmt) =
  match s.node with
  | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Wait _
  | Ast.Signal _ ->
    Sset.empty
  | Ast.If (_, then_, else_) -> Sset.union (channels then_) (channels else_)
  | Ast.While (_, body) -> channels body
  | Ast.Seq stmts | Ast.Cobegin stmts ->
    List.fold_left (fun acc stmt -> Sset.union acc (channels stmt)) Sset.empty stmts
  | Ast.Send (chan, _) | Ast.Recv (chan, _) -> Sset.singleton chan

let declared (p : Ast.program) =
  List.fold_left
    (fun (vars, arrays, sems, chans) decl ->
      match decl with
      | Ast.Var_decl { name; _ } -> (Sset.add name vars, arrays, sems, chans)
      | Ast.Arr_decl { name; _ } -> (vars, Sset.add name arrays, sems, chans)
      | Ast.Sem_decl { name; _ } -> (vars, arrays, Sset.add name sems, chans)
      | Ast.Chan_decl { name; _ } -> (vars, arrays, sems, Sset.add name chans))
    (Sset.empty, Sset.empty, Sset.empty, Sset.empty)
    p.decls
