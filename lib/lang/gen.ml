(* Seeded random program generation and shrinking. *)

module Prng = Ifc_support.Prng

type config = {
  vars : string list;
  sems : string list;
  arrays : string list;
  chans : string list;
  max_depth : int;
  allow_concurrency : bool;
  allow_loops : bool;
  max_branch : int;
}

let default =
  {
    vars = [ "w"; "x"; "y"; "z" ];
    sems = [ "s"; "t" ];
    arrays = [];
    chans = [];
    max_depth = 4;
    allow_concurrency = true;
    allow_loops = true;
    max_branch = 4;
  }

let sequential = { default with sems = []; allow_concurrency = false }

(* Array-enabled variants; sizes come from Wellformed.infer_decls. *)
let with_arrays = { default with arrays = [ "arr"; "buf" ] }

(* Channel-enabled variant: message passing instead of semaphores.
   Capacities come from Wellformed.infer_decls (1). *)
let with_channels = { default with sems = []; chans = [ "c"; "d" ] }

(* ------------------------------------------------------------------ *)
(* Expressions *)

let leaf_expr rng cfg =
  match Prng.int rng 4 with
  | 0 -> Ast.Int (Prng.range rng 0 3)
  | 3 when cfg.arrays <> [] ->
    (* Small literal indices keep most runs in bounds. *)
    Ast.Index (Prng.choose rng cfg.arrays, Ast.Int (Prng.range rng 0 3))
  | 1 | _ -> Ast.Var (Prng.choose rng cfg.vars)

let rec expr rng cfg ~size =
  if size <= 1 then leaf_expr rng cfg
  else
    match Prng.int rng 8 with
    | 0 -> Ast.Unop (Ast.Neg, expr rng cfg ~size:(size - 1))
    | 1 ->
      let op = Prng.choose rng [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
      let left = size / 2 in
      Ast.Binop (op, expr rng cfg ~size:left, expr rng cfg ~size:(size - 1 - left))
    | _ ->
      let op = Prng.choose rng [ Ast.Add; Ast.Sub; Ast.Mul ] in
      let left = size / 2 in
      Ast.Binop (op, expr rng cfg ~size:left, expr rng cfg ~size:(size - 1 - left))

(* Conditions: comparisons terminate loops more plausibly than raw ints.
   The scrutinee is usually a plain variable, but sometimes an array read
   (when arrays are enabled) or a compound expression, so guard-position
   flows through indices and arithmetic get fuzzed too. *)
let cond_expr rng cfg =
  let op = Prng.choose rng [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Gt ] in
  let scrutinee =
    match Prng.int rng 6 with
    | 0 when cfg.arrays <> [] ->
      Ast.Index (Prng.choose rng cfg.arrays, Ast.Int (Prng.range rng 0 3))
    | 1 ->
      let op = Prng.choose rng [ Ast.Add; Ast.Sub; Ast.Mul ] in
      Ast.Binop
        (op, Ast.Var (Prng.choose rng cfg.vars), Ast.Var (Prng.choose rng cfg.vars))
    | _ -> Ast.Var (Prng.choose rng cfg.vars)
  in
  Ast.Binop (op, scrutinee, Ast.Int (Prng.range rng 0 3))

(* ------------------------------------------------------------------ *)
(* Statements *)

(* Split [n] into [k] positive parts, uniformly-ish. *)
let split rng n k =
  if k <= 1 then [ n ]
  else begin
    let parts = Array.make k 1 in
    for _ = 1 to n - k do
      let i = Prng.int rng k in
      parts.(i) <- parts.(i) + 1
    done;
    Array.to_list parts
  end

let leaf_stmt rng cfg =
  let can_sync = cfg.allow_concurrency && cfg.sems <> [] in
  let can_msg = cfg.allow_concurrency && cfg.chans <> [] in
  let choices =
    [ (6, `Assign) ]
    @ (if cfg.arrays <> [] then [ (2, `Store) ] else [])
    @ (if can_sync then [ (1, `Wait); (2, `Signal) ] else [])
    @ (if can_msg then [ (2, `Send); (1, `Recv) ] else [])
    @ [ (1, `Skip) ]
  in
  match Prng.weighted rng choices with
  | `Assign ->
    let target = Prng.choose rng cfg.vars in
    Ast.assign target (expr rng cfg ~size:(Prng.range rng 1 4))
  | `Store ->
    let target = Prng.choose rng cfg.arrays in
    let index =
      if Prng.bool rng then Ast.Int (Prng.range rng 0 3)
      else Ast.Var (Prng.choose rng cfg.vars)
    in
    Ast.store target index (expr rng cfg ~size:(Prng.range rng 1 3))
  | `Wait -> Ast.wait (Prng.choose rng cfg.sems)
  | `Signal -> Ast.signal (Prng.choose rng cfg.sems)
  | `Send ->
    Ast.send (Prng.choose rng cfg.chans) (expr rng cfg ~size:(Prng.range rng 1 3))
  | `Recv -> Ast.recv (Prng.choose rng cfg.chans) (Prng.choose rng cfg.vars)
  | `Skip -> Ast.skip

let rec stmt_at rng cfg ~depth ~size =
  if size <= 1 then leaf_stmt rng cfg
  else if depth >= cfg.max_depth then
    (* Depth cap reached with budget left: spend it on a flat block so the
       requested size is still honoured. *)
    Ast.seq (List.init size (fun _ -> leaf_stmt rng cfg))
  else begin
    let can_sync = cfg.allow_concurrency in
    let choices =
      [ (5, `Seq); (3, `If) ]
      @ (if cfg.allow_loops then [ (2, `While) ] else [])
      @ if can_sync then [ (2, `Cobegin) ] else []
    in
    match Prng.weighted rng choices with
    | `Seq ->
      let k = min (Prng.range rng 2 cfg.max_branch) (max 2 (size - 1)) in
      let sizes = split rng (size - 1) k in
      Ast.seq (List.map (fun n -> stmt_at rng cfg ~depth:(depth + 1) ~size:n) sizes)
    | `If ->
      let cond = cond_expr rng cfg in
      let left = (size - 1) / 2 in
      let then_ = stmt_at rng cfg ~depth:(depth + 1) ~size:(max 1 left) in
      let else_ = stmt_at rng cfg ~depth:(depth + 1) ~size:(max 1 (size - 1 - left)) in
      Ast.if_ cond ~then_ ~else_
    | `While ->
      let cond = cond_expr rng cfg in
      Ast.while_ cond (stmt_at rng cfg ~depth:(depth + 1) ~size:(size - 1))
    | `Cobegin ->
      let k = min (Prng.range rng 2 cfg.max_branch) (max 2 (size - 1)) in
      let sizes = split rng (size - 1) k in
      Ast.cobegin (List.map (fun n -> stmt_at rng cfg ~depth:(depth + 1) ~size:n) sizes)
  end

let stmt rng cfg ~size =
  if cfg.vars = [] then invalid_arg "Gen.stmt: empty variable pool";
  stmt_at rng cfg ~depth:0 ~size

let program rng cfg ~size =
  Wellformed.infer_decls (Ast.program (stmt rng cfg ~size))

(* Count static waits/signals per semaphore; used to balance programs. *)
let rec sync_counts (s : Ast.stmt) acc =
  match s.node with
  | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Send _
  | Ast.Recv _ ->
    acc
  | Ast.If (_, a, b) -> sync_counts a acc |> sync_counts b
  | Ast.While (_, b) -> sync_counts b acc
  | Ast.Seq ss | Ast.Cobegin ss -> List.fold_left (fun acc s -> sync_counts s acc) acc ss
  | Ast.Wait sem ->
    let w, g = Ifc_support.Smap.find_or ~default:(0, 0) sem acc in
    Ifc_support.Smap.add sem (w + 1, g) acc
  | Ast.Signal sem ->
    let w, g = Ifc_support.Smap.find_or ~default:(0, 0) sem acc in
    Ifc_support.Smap.add sem (w, g + 1) acc

(* Count static sends/recvs per channel; the message-passing analogue. *)
let rec chan_counts (s : Ast.stmt) acc =
  match s.node with
  | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Wait _
  | Ast.Signal _ ->
    acc
  | Ast.If (_, a, b) -> chan_counts a acc |> chan_counts b
  | Ast.While (_, b) -> chan_counts b acc
  | Ast.Seq ss | Ast.Cobegin ss -> List.fold_left (fun acc s -> chan_counts s acc) acc ss
  | Ast.Send (chan, _) ->
    let snd_, rcv = Ifc_support.Smap.find_or ~default:(0, 0) chan acc in
    Ifc_support.Smap.add chan (snd_ + 1, rcv) acc
  | Ast.Recv (chan, _) ->
    let snd_, rcv = Ifc_support.Smap.find_or ~default:(0, 0) chan acc in
    Ifc_support.Smap.add chan (snd_, rcv + 1) acc

let program_balanced rng cfg ~size =
  let body = stmt rng cfg ~size in
  let counts = sync_counts body Ifc_support.Smap.empty in
  let compensation =
    Ifc_support.Smap.fold
      (fun sem (waits, signals) acc ->
        if waits > signals then
          List.init (waits - signals) (fun _ -> Ast.signal sem) @ acc
        else acc)
      counts []
  in
  (* Starve no receiver: top up channels whose static recvs outnumber
     sends, mirroring the semaphore compensation. *)
  let compensation =
    Ifc_support.Smap.fold
      (fun chan (sends, recvs) acc ->
        if recvs > sends then
          List.init (recvs - sends) (fun _ -> Ast.send chan (Ast.Int 0)) @ acc
        else acc)
      (chan_counts body Ifc_support.Smap.empty)
      compensation
  in
  let body =
    match compensation with
    | [] -> body
    | comp -> Ast.cobegin [ body; Ast.seq comp ]
  in
  Wellformed.infer_decls (Ast.program body)

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let rec shrink_expr e () =
  let open Seq in
  let candidates =
    match e with
    | Ast.Int 0 | Ast.Bool _ -> Seq.empty
    | Ast.Int _ -> return (Ast.Int 0)
    | Ast.Var _ -> return (Ast.Int 0)
    | Ast.Index (a, i) ->
      cons (Ast.Int 0)
        (map (fun i' -> Ast.Index (a, i')) (shrink_expr i))
    | Ast.Unop (op, inner) ->
      cons inner (map (fun inner' -> Ast.Unop (op, inner')) (shrink_expr inner))
    | Ast.Binop (op, a, b) ->
      cons a
        (cons b
           (append
              (map (fun a' -> Ast.Binop (op, a', b)) (shrink_expr a))
              (map (fun b' -> Ast.Binop (op, a, b')) (shrink_expr b))))
  in
  candidates ()

(* Every way of removing one element from a list. *)
let removals xs =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs

(* Every way of shrinking one element in place. *)
let in_place shrink xs =
  List.concat
    (List.mapi
       (fun i x ->
         List.of_seq
           (Seq.map (fun x' -> List.mapi (fun j y -> if j = i then x' else y) xs)
              (shrink x)))
       xs)

let rec shrink_stmt (s : Ast.stmt) () =
  let mk node = { s with Ast.node } in
  let candidates =
    match s.node with
    | Ast.Skip -> []
    | Ast.Assign (x, e) ->
      Ast.skip :: List.map (fun e' -> mk (Ast.Assign (x, e'))) (List.of_seq (shrink_expr e))
    | Ast.Declassify (x, e, cls) ->
      Ast.skip
      :: List.map (fun e' -> mk (Ast.Declassify (x, e', cls))) (List.of_seq (shrink_expr e))
    | Ast.Store (a, i, e) ->
      Ast.skip
      :: List.map (fun i' -> mk (Ast.Store (a, i', e))) (List.of_seq (shrink_expr i))
      @ List.map (fun e' -> mk (Ast.Store (a, i, e'))) (List.of_seq (shrink_expr e))
    | Ast.Wait _ | Ast.Signal _ | Ast.Recv _ -> [ Ast.skip ]
    | Ast.Send (c, e) ->
      Ast.skip
      :: List.map (fun e' -> mk (Ast.Send (c, e'))) (List.of_seq (shrink_expr e))
    | Ast.If (cond, then_, else_) ->
      [ then_; else_ ]
      @ List.map (fun c -> mk (Ast.If (c, then_, else_))) (List.of_seq (shrink_expr cond))
      @ List.map (fun t -> mk (Ast.If (cond, t, else_))) (List.of_seq (shrink_stmt then_))
      @ List.map (fun e -> mk (Ast.If (cond, then_, e))) (List.of_seq (shrink_stmt else_))
    | Ast.While (cond, body) ->
      [ body; Ast.skip ]
      @ List.map (fun c -> mk (Ast.While (c, body))) (List.of_seq (shrink_expr cond))
      @ List.map (fun b -> mk (Ast.While (cond, b))) (List.of_seq (shrink_stmt body))
    | Ast.Seq stmts ->
      stmts
      @ List.map (fun l -> mk (Ast.Seq l)) (removals stmts)
      @ List.map (fun l -> mk (Ast.Seq l)) (in_place shrink_stmt stmts)
    | Ast.Cobegin branches ->
      branches
      @ [ mk (Ast.Seq branches) ]
      @ List.map (fun l -> mk (Ast.Cobegin l)) (removals branches)
      @ List.map (fun l -> mk (Ast.Cobegin l)) (in_place shrink_stmt branches)
  in
  (List.to_seq candidates) ()

let shrink_program (p : Ast.program) =
  Seq.map
    (fun body -> Wellformed.infer_decls (Ast.program body))
    (shrink_stmt p.body)
