(** Static well-formedness checks, independent of any security analysis.

    Errors make a program meaningless (undeclared names, a semaphore used
    in arithmetic); warnings flag violations of the paper's §2 atomicity
    restriction — an expression or assignment referencing more than one
    variable that another process can change is only sound if executed
    indivisibly, which the paper allows but implementations avoid. *)

type severity = Error | Warning

type issue = { severity : severity; span : Loc.span; message : string }

val pp_issue : Format.formatter -> issue -> unit

val check : Ast.program -> issue list
(** [check p] returns all issues, errors first. *)

val atomicity_issues : Ast.stmt -> issue list
(** The §2 atomicity warnings alone: statements referencing more than one
    variable modified by a sibling [cobegin] branch. Exposed so the
    concurrency analyzer can cross-reference a detected race with the
    atomicity warning it makes exploitable. *)

val errors : Ast.program -> issue list
(** [errors p] is [check p] restricted to severity [Error]. *)

val is_valid : Ast.program -> bool
(** [is_valid p] iff [errors p = []]. *)

val check_linked : Ast.linked -> issue list
(** [check_linked l] checks a linked unit, errors first: unique module
    names; every exported name has a unique provider and is a locally
    declared integer variable; no import is shadowed by a local
    declaration or listed twice; every import resolves to another
    module's export or a main declaration; each module body (with its
    imports in scope as integer variables) and the main program (with all
    exports in scope) pass {!check}. *)

val linked_errors : Ast.linked -> issue list
(** [linked_errors l] is [check_linked l] restricted to severity [Error]. *)

val linked_is_valid : Ast.linked -> bool
(** [linked_is_valid l] iff [linked_errors l = []]. *)

val default_array_size : int
(** Size given to arrays synthesised by {!infer_decls} (8). *)

val default_channel_capacity : int
(** Capacity given to channels synthesised by {!infer_decls} (1). *)

val infer_decls : Ast.program -> Ast.program
(** [infer_decls p] adds declarations for any name used but not declared:
    names in [wait]/[signal] position become semaphores (initial count 0),
    names in [send]/[recv] channel position channels (of
    {!default_channel_capacity}), names in index position arrays (of
    {!default_array_size}), all others integer variables. Existing
    declarations are kept. Useful for programmatically built programs and
    test fixtures. *)
