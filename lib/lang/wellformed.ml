(* Well-formedness checks. See the interface for the rules enforced. *)

module Sset = Ifc_support.Sset
module Smap = Ifc_support.Smap

type severity = Error | Warning

type issue = { severity : severity; span : Loc.span; message : string }

let pp_issue ppf i =
  Fmt.pf ppf "%s: %a: %s"
    (match i.severity with Error -> "error" | Warning -> "warning")
    Loc.pp i.span i.message

let error span message = { severity = Error; span; message }

let warning span message = { severity = Warning; span; message }

(* Count every occurrence (not distinct names) of variables from [shared]
   in an expression — the paper's "memory reference" count. *)
let rec occurrences shared = function
  | Ast.Int _ | Ast.Bool _ -> 0
  | Ast.Var x -> if Sset.mem x shared then 1 else 0
  | Ast.Index (a, i) -> (if Sset.mem a shared then 1 else 0) + occurrences shared i
  | Ast.Unop (_, e) -> occurrences shared e
  | Ast.Binop (_, a, b) -> occurrences shared a + occurrences shared b

(* Issues from name usage: undeclared names and category confusion
   between the four namespaces (integers, arrays, semaphores, channels). *)
let usage_issues ~vars ~arrays ~sems ~chans (body : Ast.stmt) =
  let scalar_ok span x acc =
    if Sset.mem x sems then
      error span (Printf.sprintf "semaphore %s used in an expression" x) :: acc
    else if Sset.mem x chans then
      error span (Printf.sprintf "channel %s used in an expression" x) :: acc
    else if Sset.mem x arrays then
      error span (Printf.sprintf "array %s used without an index" x) :: acc
    else if not (Sset.mem x vars) then
      error span (Printf.sprintf "undeclared variable %s" x) :: acc
    else acc
  in
  let array_ok span a acc =
    if Sset.mem a arrays then acc
    else if Sset.mem a vars || Sset.mem a sems || Sset.mem a chans then
      error span (Printf.sprintf "%s is not an array" a) :: acc
    else error span (Printf.sprintf "undeclared array %s" a) :: acc
  in
  let channel_ok span c acc =
    if Sset.mem c chans then acc
    else if Sset.mem c vars || Sset.mem c arrays || Sset.mem c sems then
      error span (Printf.sprintf "%s is not a channel" c) :: acc
    else error span (Printf.sprintf "undeclared channel %s" c) :: acc
  in
  let rec check_expr span e acc =
    match e with
    | Ast.Int _ | Ast.Bool _ -> acc
    | Ast.Var x -> scalar_ok span x acc
    | Ast.Index (a, i) -> array_ok span a acc |> check_expr span i
    | Ast.Unop (_, e) -> check_expr span e acc
    | Ast.Binop (_, e1, e2) -> check_expr span e1 acc |> check_expr span e2
  in
  let rec go (s : Ast.stmt) acc =
    match s.node with
    | Ast.Skip -> acc
    | Ast.Assign (x, e) | Ast.Declassify (x, e, _) ->
      let acc = check_expr s.span e acc in
      if Sset.mem x sems then
        error s.span (Printf.sprintf "assignment to semaphore %s" x) :: acc
      else if Sset.mem x chans then
        error s.span (Printf.sprintf "assignment to channel %s" x) :: acc
      else if Sset.mem x arrays then
        error s.span (Printf.sprintf "assignment to array %s needs an index" x) :: acc
      else if not (Sset.mem x vars) then
        error s.span (Printf.sprintf "undeclared variable %s" x) :: acc
      else acc
    | Ast.Store (a, i, e) ->
      array_ok s.span a acc |> check_expr s.span i |> check_expr s.span e
    | Ast.If (cond, then_, else_) -> check_expr s.span cond acc |> go then_ |> go else_
    | Ast.While (cond, body) -> check_expr s.span cond acc |> go body
    | Ast.Seq stmts | Ast.Cobegin stmts -> List.fold_left (fun acc s -> go s acc) acc stmts
    | Ast.Wait sem | Ast.Signal sem ->
      if Sset.mem sem vars || Sset.mem sem arrays || Sset.mem sem chans then
        error s.span (Printf.sprintf "%s is not a semaphore" sem) :: acc
      else if not (Sset.mem sem sems) then
        error s.span (Printf.sprintf "undeclared semaphore %s" sem) :: acc
      else acc
    | Ast.Send (chan, e) -> channel_ok s.span chan acc |> check_expr s.span e
    | Ast.Recv (chan, x) ->
      let acc = channel_ok s.span chan acc in
      if Sset.mem x sems then
        error s.span (Printf.sprintf "recv into semaphore %s" x) :: acc
      else if Sset.mem x chans then
        error s.span (Printf.sprintf "recv into channel %s" x) :: acc
      else if Sset.mem x arrays then
        error s.span (Printf.sprintf "recv into array %s needs an index" x) :: acc
      else if not (Sset.mem x vars) then
        error s.span (Printf.sprintf "undeclared variable %s" x) :: acc
      else acc
  in
  go body []

(* The §2 atomicity restriction, checked at every cobegin: within a branch,
   each expression/assignment may reference at most one variable that a
   *sibling* branch modifies. *)
let atomicity_issues (body : Ast.stmt) =
  let rec leaf_checks shared (s : Ast.stmt) acc =
    match s.node with
    | Ast.Skip | Ast.Wait _ | Ast.Signal _ | Ast.Recv _ -> acc
    | Ast.Send (_, e) ->
      let count = occurrences shared e in
      if count > 1 then
        warning s.span
          (Printf.sprintf
             "send payload makes %d references to variables modified by concurrent \
              processes; the paper requires at most one for non-indivisible execution"
             count)
        :: acc
      else acc
    | Ast.Store (a, i, e) ->
      let count =
        occurrences shared i + occurrences shared e
        + if Sset.mem a shared then 1 else 0
      in
      if count > 1 then
        warning s.span
          (Printf.sprintf
             "array store makes %d references to variables modified by concurrent \
              processes; the paper requires at most one for non-indivisible execution"
             count)
        :: acc
      else acc
    | Ast.Assign (x, e) | Ast.Declassify (x, e, _) ->
      let count = occurrences shared e + if Sset.mem x shared then 1 else 0 in
      if count > 1 then
        warning s.span
          (Printf.sprintf
             "assignment makes %d references to variables modified by concurrent \
              processes; the paper requires at most one for non-indivisible execution"
             count)
        :: acc
      else acc
    | Ast.If (cond, then_, else_) ->
      let acc = expr_check s.span shared cond acc in
      leaf_checks shared then_ acc |> leaf_checks shared else_
    | Ast.While (cond, body) ->
      let acc = expr_check s.span shared cond acc in
      leaf_checks shared body acc
    | Ast.Seq stmts -> List.fold_left (fun acc s -> leaf_checks shared s acc) acc stmts
    | Ast.Cobegin branches ->
      (* Nested cobegins are re-analysed at their own node below; their
         branches also inherit the enclosing shared set. *)
      List.fold_left (fun acc b -> leaf_checks shared b acc) acc branches
  and expr_check span shared e acc =
    let count = occurrences shared e in
    if count > 1 then
      warning span
        (Printf.sprintf
           "expression makes %d references to variables modified by concurrent processes"
           count)
      :: acc
    else acc
  in
  let rec go (s : Ast.stmt) acc =
    match s.node with
    | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Wait _
    | Ast.Signal _ | Ast.Send _ | Ast.Recv _ ->
      acc
    | Ast.If (_, then_, else_) -> go then_ acc |> go else_
    | Ast.While (_, body) -> go body acc
    | Ast.Seq stmts -> List.fold_left (fun acc s -> go s acc) acc stmts
    | Ast.Cobegin branches ->
      let mods = List.map Vars.modified branches in
      let acc =
        List.fold_left
          (fun acc (i, branch) ->
            let shared =
              List.concat
                (List.filteri (fun j _ -> j <> i) (List.map Sset.elements mods))
              |> Sset.of_list
            in
            leaf_checks shared branch acc)
          acc
          (List.mapi (fun i b -> (i, b)) branches)
      in
      List.fold_left (fun acc b -> go b acc) acc branches
  in
  go body []

let decl_kind = function
  | Ast.Var_decl _ -> "integer variable"
  | Ast.Arr_decl _ -> "array"
  | Ast.Sem_decl _ -> "semaphore"
  | Ast.Chan_decl _ -> "channel"

let duplicate_issues (p : Ast.program) =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun decl ->
      let name =
        match decl with
        | Ast.Var_decl { name; _ }
        | Ast.Arr_decl { name; _ }
        | Ast.Sem_decl { name; _ }
        | Ast.Chan_decl { name; _ } ->
          name
      in
      let kind = decl_kind decl in
      match Hashtbl.find_opt seen name with
      | Some first_kind ->
        let detail =
          if first_kind = kind then Printf.sprintf "both as %s" kind
          else Printf.sprintf "first as %s, again as %s" first_kind kind
        in
        Some
          (error Loc.dummy
             (Printf.sprintf "duplicate declaration of %s (%s)" name detail))
      | None ->
        Hashtbl.add seen name kind;
        None)
    p.decls

let init_issues (p : Ast.program) =
  List.filter_map
    (function
      | Ast.Sem_decl { name; init; _ } when init < 0 ->
        Some (error Loc.dummy (Printf.sprintf "semaphore %s has negative initial count" name))
      | Ast.Arr_decl { name; size; _ } when size <= 0 ->
        Some (error Loc.dummy (Printf.sprintf "array %s has non-positive size" name))
      | Ast.Chan_decl { name; cap; _ } when cap <= 0 ->
        Some
          (error Loc.dummy (Printf.sprintf "channel %s has non-positive capacity" name))
      | Ast.Sem_decl _ | Ast.Var_decl _ | Ast.Arr_decl _ | Ast.Chan_decl _ -> None)
    p.decls

let check (p : Ast.program) =
  let vars, arrays, sems, chans = Vars.declared p in
  let issues =
    duplicate_issues p @ init_issues p
    @ usage_issues ~vars ~arrays ~sems ~chans p.body
    @ atomicity_issues p.body
  in
  let severity_rank i = match i.severity with Error -> 0 | Warning -> 1 in
  List.stable_sort (fun a b -> compare (severity_rank a) (severity_rank b)) issues

let errors p = List.filter (fun i -> i.severity = Error) (check p)

let is_valid p = errors p = []

(* ------------------------------------------------------------------ *)
(* Linked units *)

let decl_name = function
  | Ast.Var_decl { name; _ }
  | Ast.Arr_decl { name; _ }
  | Ast.Sem_decl { name; _ }
  | Ast.Chan_decl { name; _ } ->
    name

(* Interface checks for one module, independent of the rest of the unit:
   every export is a locally declared integer variable, no import is
   shadowed by a local declaration, and no name appears twice in the same
   clause. The body is checked with imports in scope as integer
   variables — that is exactly how the elaboration will declare them if
   the providing side does. *)
let module_issues (m : Ast.module_unit) =
  let label = Printf.sprintf "module %s" m.iface.m_name in
  let local = List.map decl_name m.m_decls |> Sset.of_list in
  let dup_entries what entries =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (e : Ast.iface_entry) ->
        if Hashtbl.mem seen e.iv_name then
          Some
            (error Loc.dummy
               (Printf.sprintf "%s lists %s twice in %s" label e.iv_name what))
        else begin
          Hashtbl.add seen e.iv_name ();
          None
        end)
      entries
  in
  let provide_issues =
    List.filter_map
      (fun (e : Ast.iface_entry) ->
        let declared_as =
          List.find_opt (fun d -> String.equal (decl_name d) e.iv_name) m.m_decls
        in
        match declared_as with
        | Some (Ast.Var_decl _) -> None
        | Some d ->
          Some
            (error Loc.dummy
               (Printf.sprintf "%s provides %s, which is declared as a %s; interfaces \
                                export integer variables only"
                  label e.iv_name (decl_kind d)))
        | None ->
          Some
            (error Loc.dummy
               (Printf.sprintf "%s provides %s but does not declare it" label e.iv_name)))
      m.iface.provides
  in
  let require_issues =
    List.filter_map
      (fun (e : Ast.iface_entry) ->
        if Sset.mem e.iv_name local then
          Some
            (error Loc.dummy
               (Printf.sprintf "%s requires %s but also declares it locally" label
                  e.iv_name))
        else None)
      m.iface.requires
  in
  let scoped =
    let imports =
      List.map (fun (e : Ast.iface_entry) -> Ast.Var_decl { name = e.iv_name; cls = None })
        m.iface.requires
    in
    { Ast.decls = m.m_decls @ imports; body = m.m_body }
  in
  dup_entries "provides" m.iface.provides
  @ dup_entries "requires" m.iface.requires
  @ provide_issues @ require_issues @ check scoped

let check_linked (l : Ast.linked) =
  let name_issues =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (m : Ast.module_unit) ->
        let n = m.iface.m_name in
        if Hashtbl.mem seen n then
          Some (error Loc.dummy (Printf.sprintf "duplicate module name %s" n))
        else begin
          Hashtbl.add seen n ();
          None
        end)
      l.modules
  in
  (* Each exported name has a unique provider; the linker would otherwise
     not know whose class bound governs it. *)
  let export_issues =
    let seen = Hashtbl.create 16 in
    List.concat_map
      (fun (m : Ast.module_unit) ->
        List.filter_map
          (fun (e : Ast.iface_entry) ->
            match Hashtbl.find_opt seen e.iv_name with
            | Some first ->
              Some
                (error Loc.dummy
                   (Printf.sprintf "%s exported by both module %s and module %s" e.iv_name
                      first m.iface.m_name))
            | None ->
              Hashtbl.add seen e.iv_name m.iface.m_name;
              None)
          m.iface.provides)
      l.modules
  in
  (* Every import resolves: to another module's export or to a main
     declaration. Self-resolution is excluded — a module cannot satisfy
     its own requirement. *)
  let resolution_issues =
    let main_names =
      match l.main with
      | None -> Sset.empty
      | Some p -> List.map decl_name p.decls |> Sset.of_list
    in
    List.concat_map
      (fun (m : Ast.module_unit) ->
        List.filter_map
          (fun (e : Ast.iface_entry) ->
            let provided_elsewhere =
              List.exists
                (fun (other : Ast.module_unit) ->
                  (not (String.equal other.iface.m_name m.iface.m_name))
                  && List.exists
                       (fun (p : Ast.iface_entry) -> String.equal p.iv_name e.iv_name)
                       other.iface.provides)
                l.modules
            in
            if provided_elsewhere || Sset.mem e.iv_name main_names then None
            else
              Some
                (error Loc.dummy
                   (Printf.sprintf
                      "module %s requires %s, which no other module provides and main \
                       does not declare"
                      m.iface.m_name e.iv_name)))
          m.iface.requires)
      l.modules
  in
  (* Main is checked with every export in scope as an integer variable. *)
  let main_issues =
    match l.main with
    | None -> []
    | Some p ->
      let exports =
        List.concat_map
          (fun (m : Ast.module_unit) ->
            List.filter_map
              (fun (e : Ast.iface_entry) ->
                if List.exists (fun d -> String.equal (decl_name d) e.iv_name) p.decls
                then None
                else Some (Ast.Var_decl { name = e.iv_name; cls = None }))
              m.iface.provides)
          l.modules
      in
      check { p with decls = p.decls @ exports }
  in
  let issues =
    name_issues @ export_issues @ resolution_issues
    @ List.concat_map module_issues l.modules
    @ main_issues
  in
  let severity_rank i = match i.severity with Error -> 0 | Warning -> 1 in
  List.stable_sort (fun a b -> compare (severity_rank a) (severity_rank b)) issues

let linked_errors l = List.filter (fun i -> i.severity = Error) (check_linked l)

let linked_is_valid l = linked_errors l = []

(* Names used in array position (Index/Store). *)
let rec array_names (s : Ast.stmt) =
  let rec of_expr = function
    | Ast.Int _ | Ast.Bool _ | Ast.Var _ -> Sset.empty
    | Ast.Index (a, i) -> Sset.add a (of_expr i)
    | Ast.Unop (_, e) -> of_expr e
    | Ast.Binop (_, e1, e2) -> Sset.union (of_expr e1) (of_expr e2)
  in
  match s.node with
  | Ast.Skip | Ast.Wait _ | Ast.Signal _ | Ast.Recv _ -> Sset.empty
  | Ast.Assign (_, e) | Ast.Declassify (_, e, _) | Ast.Send (_, e) -> of_expr e
  | Ast.Store (a, i, e) -> Sset.add a (Sset.union (of_expr i) (of_expr e))
  | Ast.If (cond, t, f) ->
    Sset.union (of_expr cond) (Sset.union (array_names t) (array_names f))
  | Ast.While (cond, b) -> Sset.union (of_expr cond) (array_names b)
  | Ast.Seq ss | Ast.Cobegin ss ->
    List.fold_left (fun acc s -> Sset.union acc (array_names s)) Sset.empty ss

let default_array_size = 8

let default_channel_capacity = 1

let infer_decls (p : Ast.program) =
  let vars, arrays, sems, chans = Vars.declared p in
  let known = Sset.union (Sset.union vars chans) (Sset.union arrays sems) in
  let used_sems = Vars.semaphores p.body in
  let used_chans = Vars.channels p.body in
  let used_arrays = array_names p.body in
  let used_all = Vars.all_vars p.body in
  let missing_sems = Sset.diff used_sems known in
  let missing_chans = Sset.diff used_chans known in
  let missing_vars =
    Sset.diff
      (Sset.diff (Sset.diff (Sset.diff used_all used_sems) used_chans) used_arrays)
      known
  in
  let missing_arrays = Sset.diff used_arrays known in
  let new_decls =
    List.map (fun name -> Ast.Var_decl { name; cls = None }) (Sset.elements missing_vars)
    @ List.map
        (fun name -> Ast.Arr_decl { name; size = default_array_size; cls = None })
        (Sset.elements missing_arrays)
    @ List.map
        (fun name -> Ast.Sem_decl { name; init = 0; cls = None })
        (Sset.elements missing_sems)
    @ List.map
        (fun name ->
          Ast.Chan_decl { name; cap = default_channel_capacity; cls = None })
        (Sset.elements missing_chans)
  in
  { p with decls = p.decls @ new_decls }
