(* Refinement fuzzing: module pairs, candidate replacements, and the
   executor-backed refutation of claimed-safe swaps. *)

module Ast = Ifc_lang.Ast
module Pretty = Ifc_lang.Pretty
module Metrics = Ifc_lang.Metrics
module Wellformed = Ifc_lang.Wellformed
module Binding = Ifc_core.Binding
module Lattice = Ifc_lattice.Lattice
module Prng = Ifc_support.Prng
module Ni = Ifc_exec.Noninterference
module Link = Ifc_modsys.Link
module Refine = Ifc_modsys.Refine

type case = { unit_ : Ast.linked; replacement : Ast.module_unit }

let target_name case = case.replacement.Ast.iface.Ast.m_name

let base_module case =
  List.find_opt
    (fun (m : Ast.module_unit) ->
      String.equal m.Ast.iface.Ast.m_name (target_name case))
    case.unit_.Ast.modules

let swapped case =
  {
    case.unit_ with
    Ast.modules =
      List.map
        (fun (m : Ast.module_unit) ->
          if String.equal m.Ast.iface.Ast.m_name (target_name case) then
            case.replacement
          else m)
        case.unit_.Ast.modules;
  }

let elaborated case = Link.elaborate (swapped case)

let case_binding ~lattice case =
  match Link.binding ~lattice (swapped case) with
  | Ok b -> b
  | Error _ -> Binding.make lattice ~default:lattice.Lattice.bottom []

let statements case =
  (Metrics.of_program (elaborated case)).Metrics.statements

let to_text case = Pretty.linked_to_string (swapped case)

(* ------------------------------------------------------------------ *)
(* Generation *)

let entry name cls = { Ast.iv_name = name; iv_class = cls }

let var name cls = Ast.Var_decl { name; cls = Some cls }

(* A source/sink pair over a two-class split: [src] exports [out] (fed
   from the link-supplied [cfg]), [dst] reads [out] into its own export.
   Bodies draw from a pool of flows that respect the declared classes, so
   a fair share of generated units link-certify — the interesting half of
   the refinement space. *)
let generate lattice rng =
  let lo = lattice.Lattice.bottom and hi = lattice.Lattice.top in
  let out_cls = if Prng.bool rng then lo else hi in
  let stmt_pool =
    [
      (fun () -> Ast.assign "out" (Ast.Int (Prng.int rng 8)));
      (fun () ->
        Ast.assign "out" (Ast.Binop (Ast.Add, Ast.Var "cfg", Ast.Int (Prng.int rng 4))));
      (fun () -> Ast.assign "t" (Ast.Var "cfg"));
      (fun () ->
        Ast.assign "t" (Ast.Binop (Ast.Add, Ast.Var "t", Ast.Int (Prng.int rng 4))));
      (fun () -> Ast.assign "out" (Ast.Var "t"));
      (fun () -> Ast.skip);
    ]
  in
  let body n =
    Ast.seq
      (Ast.assign "out" (Ast.Int (Prng.int rng 4))
      :: List.init n (fun _ -> (Prng.choose rng stmt_pool) ()))
  in
  let src =
    {
      Ast.iface =
        {
          Ast.m_name = "src";
          provides = [ entry "out" out_cls ];
          requires = [ entry "cfg" lo ];
        };
      m_decls = [ var "out" out_cls; var "t" out_cls ];
      m_body = body (1 + Prng.int rng 3);
    }
  in
  let dst =
    {
      Ast.iface =
        {
          Ast.m_name = "dst";
          provides = [ entry "res" hi ];
          requires = [ entry "out" lo ];
        };
      m_decls = [ var "res" hi ];
      m_body =
        Ast.assign "res" (Ast.Binop (Ast.Add, Ast.Var "out", Ast.Int (Prng.int rng 4)));
    }
  in
  let main =
    {
      Ast.decls = [ var "cfg" lo; var "secret" hi ];
      body = Ast.assign "cfg" (Ast.Int (Prng.int rng 4));
    }
  in
  let unit_ = { Ast.modules = [ src; dst ]; main = Some main } in
  (* The candidate replacement: a mutation of [src]. Interface mutations
     probe the conformance legs of the refinement check, body mutations
     the summary-comparison legs — including the one that matters most, a
     flow from the link-wide secret. *)
  let replacement =
    match Prng.int rng 6 with
    | 0 ->
      (* Export at the other class, bound unchanged. *)
      let cls = if String.equal out_cls lo then hi else lo in
      { src with Ast.m_decls = [ var "out" cls; var "t" out_cls ] }
    | 1 ->
      (* Pull in the secret: a new import and a flow through it. *)
      {
        src with
        Ast.iface =
          {
            src.Ast.iface with
            Ast.requires = entry "cfg" lo :: [ entry "secret" hi ];
          };
        m_body = Ast.seq [ src.Ast.m_body; Ast.assign "out" (Ast.Var "secret") ];
      }
    | 2 ->
      (* Strictly tighter body: a constant export. *)
      { src with Ast.m_body = Ast.assign "out" (Ast.Int (Prng.int rng 4)) }
    | 3 ->
      (* Raise the provides bound. *)
      {
        src with
        Ast.iface = { src.Ast.iface with Ast.provides = [ entry "out" hi ] };
        m_decls = [ var "out" hi; var "t" out_cls ];
      }
    | 4 ->
      (* Drop the [cfg] import and every use of it. *)
      {
        src with
        Ast.iface = { src.Ast.iface with Ast.requires = [] };
        m_body = body 0;
      }
    | _ ->
      (* Body reshuffle at the same interface. *)
      { src with Ast.m_body = body (1 + Prng.int rng 3) }
  in
  { unit_; replacement }

(* The planted refine-unsoundness (test hook): a certified two-module
   unit and a replacement that openly pipes the link-wide secret into its
   low export. The honest refinement check rejects it — the campaign
   forces the claim to "accepted" — and the executor refutes the forced
   claim on the swapped unit, where [out = secret] is low-observable. *)
let planted lattice =
  let lo = lattice.Lattice.bottom and hi = lattice.Lattice.top in
  let src =
    {
      Ast.iface =
        {
          Ast.m_name = "src";
          provides = [ entry "out" lo ];
          requires = [ entry "cfg" lo ];
        };
      m_decls = [ var "out" lo ];
      m_body = Ast.assign "out" (Ast.Binop (Ast.Add, Ast.Var "cfg", Ast.Int 1));
    }
  in
  let dst =
    {
      Ast.iface =
        {
          Ast.m_name = "dst";
          provides = [ entry "res" lo ];
          requires = [ entry "out" lo ];
        };
      m_decls = [ var "res" lo ];
      m_body = Ast.assign "res" (Ast.Var "out");
    }
  in
  let main =
    {
      Ast.decls = [ var "cfg" lo; var "secret" hi ];
      body = Ast.assign "cfg" (Ast.Int 1);
    }
  in
  let replacement =
    {
      src with
      Ast.iface =
        { src.Ast.iface with Ast.requires = [ entry "secret" hi ] };
      m_body = Ast.assign "out" (Ast.Var "secret");
    }
  in
  { unit_ = { Ast.modules = [ src; dst ]; main = Some main }; replacement }

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let evaluate ?override_claim ~lattice ~ni_seed ~ni_pairs ~max_states case =
  let base_ok =
    match Link.certify ~lattice case.unit_ with
    | Ok o -> o.Link.ok
    | Error _ -> false
  in
  let refine_ok =
    match base_module case with
    | None -> false
    | Some base -> (
      match Refine.check_against ~lattice ~base case.replacement with
      | Ok r -> r.Refine.ok
      | Error _ -> false)
  in
  let claimed =
    match override_claim with
    | Some forced -> forced
    | None -> base_ok && refine_ok
  in
  if not claimed then (claimed, false, 0, 0)
  else begin
    let sw = swapped case in
    match Link.binding ~lattice sw with
    | Error _ -> (claimed, false, 0, 0)
    | Ok binding ->
      let p = Link.elaborate sw in
      let ni =
        Ni.test ~seed:ni_seed ~pairs:ni_pairs ~max_states
          ~observer:lattice.Lattice.bottom binding p
      in
      ( claimed,
        ni.Ni.violations <> [],
        ni.Ni.pairs_tested,
        ni.Ni.pairs_skipped )
  end

let verdicts ~claimed ~leak ~tested ~skipped =
  {
    Classify.cfm = false;
    denning = false;
    fs = false;
    prove = false;
    cert_ok = true;
    ni_tested = tested;
    ni_skipped = skipped;
    ni_violations = 0;
    lint_race_free = true;
    lint_deadlock_free = true;
    lint_must_block = false;
    lint_chan_race_free = true;
    lint_chan_deadlock_free = true;
    lint_findings = 0;
    dyn_race = false;
    dyn_deadlock = false;
    dyn_terminal = false;
    dyn_complete = true;
    dyn_chan_race = false;
    dyn_chan_deadlock = false;
    store_divergent = false;
    prune_spans = 0;
    prune_violated = false;
    witness_checked = false;
    witness_ok = true;
    refine_checked = true;
    refine_claimed_safe = claimed;
    refine_dyn_leak = leak;
  }

(* ------------------------------------------------------------------ *)
(* Shrinking *)

(* Minimize a module pair by shrinking one body at a time — the
   replacement's first, then each unit module's, then main's — each
   through the plain program shrinker with the predicate re-evaluated
   over the whole reassembled case. The budget is split evenly. *)
let shrink ~budget ~keep case =
  let keep case =
    (try Wellformed.linked_is_valid (swapped case) with _ -> false)
    && (try keep case with _ -> false)
  in
  let add (a : Shrink.stats) (b : Shrink.stats) =
    { Shrink.steps = a.Shrink.steps + b.Shrink.steps;
      evals = a.Shrink.evals + b.Shrink.evals }
  in
  let slice = max 1 (budget / 4) in
  let shrink_body body rebuild case stats =
    let wrap b = rebuild case b in
    let p, s =
      Shrink.minimize ~budget:slice
        ~keep:(fun p -> keep (wrap p.Ast.body))
        (Ast.program body)
    in
    (wrap p.Ast.body, add stats s)
  in
  let stats = { Shrink.steps = 0; evals = 0 } in
  (* Replacement body. *)
  let case, stats =
    shrink_body case.replacement.Ast.m_body
      (fun case b ->
        { case with replacement = { case.replacement with Ast.m_body = b } })
      case stats
  in
  (* Each module body of the base unit. *)
  let case, stats =
    List.fold_left
      (fun (case, stats) name ->
        match
          List.find_opt
            (fun (m : Ast.module_unit) ->
              String.equal m.Ast.iface.Ast.m_name name)
            case.unit_.Ast.modules
        with
        | None -> (case, stats)
        | Some m ->
          shrink_body m.Ast.m_body
            (fun case b ->
              {
                case with
                unit_ =
                  {
                    case.unit_ with
                    Ast.modules =
                      List.map
                        (fun (m : Ast.module_unit) ->
                          if String.equal m.Ast.iface.Ast.m_name name then
                            { m with Ast.m_body = b }
                          else m)
                        case.unit_.Ast.modules;
                  };
              })
            case stats)
      (case, stats)
      (List.map
         (fun (m : Ast.module_unit) -> m.Ast.iface.Ast.m_name)
         case.unit_.Ast.modules)
  in
  (* Main body. *)
  match case.unit_.Ast.main with
  | None -> (case, stats)
  | Some main ->
    shrink_body main.Ast.body
      (fun case b ->
        {
          case with
          unit_ =
            { case.unit_ with Ast.main = Some { main with Ast.body = b } };
        })
      case stats
