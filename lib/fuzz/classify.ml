(* Classifying analyzer disagreements against the paper's hierarchy. *)

type verdicts = {
  cfm : bool;
  denning : bool;
  fs : bool;
  prove : bool;
  cert_ok : bool;
  ni_tested : int;
  ni_skipped : int;
  ni_violations : int;
  lint_race_free : bool;
  lint_deadlock_free : bool;
  lint_must_block : bool;
  lint_chan_race_free : bool;
  lint_chan_deadlock_free : bool;
  lint_findings : int;
  dyn_race : bool;
  dyn_deadlock : bool;
  dyn_terminal : bool;
  dyn_complete : bool;
  dyn_chan_race : bool;
  dyn_chan_deadlock : bool;
  store_divergent : bool;
  prune_spans : int;
  prune_violated : bool;
  witness_checked : bool;
  witness_ok : bool;
  refine_checked : bool;
  refine_claimed_safe : bool;
  refine_dyn_leak : bool;
}

type inversion =
  | Unsound_certification
  | Refine_unsound
  | Logic_mismatch
  | Cert_inversion
  | Store_stale
  | Chan_race_unsound
  | Chan_deadlock_unsound
  | Race_unsound
  | Deadlock_unsound
  | Prune_unsound
  | Witness_bogus
  | Above_denning
  | Above_flow_sensitive

type gap = Denning_accepts | Flow_sensitive_accepts

type t = {
  inversions : inversion list;
  gaps : gap list;
  confirmed_rejection : bool;
}

let classify v =
  let inversions =
    (if v.cfm && v.ni_violations > 0 then [ Unsound_certification ] else [])
    @ (if v.refine_claimed_safe && v.refine_dyn_leak then [ Refine_unsound ]
       else [])
    @ (if not (Bool.equal v.prove v.cfm) then [ Logic_mismatch ] else [])
    @ (if v.prove && not v.cert_ok then [ Cert_inversion ] else [])
    @ (if v.store_divergent then [ Store_stale ] else [])
    @ (if v.lint_chan_race_free && v.dyn_chan_race then [ Chan_race_unsound ]
       else [])
    @ (if v.lint_chan_deadlock_free && v.dyn_chan_deadlock then
         [ Chan_deadlock_unsound ]
       else [])
    @ (if v.lint_race_free && v.dyn_race then [ Race_unsound ] else [])
    @ (if
         (v.lint_deadlock_free && v.dyn_deadlock)
         || (v.lint_must_block && v.dyn_terminal)
       then [ Deadlock_unsound ]
       else [])
    @ (if v.prune_violated then [ Prune_unsound ] else [])
    @ (if v.witness_checked && not v.witness_ok then [ Witness_bogus ] else [])
    @ (if v.cfm && not v.denning then [ Above_denning ] else [])
    @ if v.cfm && not v.fs then [ Above_flow_sensitive ] else []
  in
  let gaps =
    (if v.denning && not v.cfm then [ Denning_accepts ] else [])
    @ if v.fs && not v.cfm then [ Flow_sensitive_accepts ] else []
  in
  { inversions; gaps; confirmed_rejection = (not v.cfm) && v.ni_violations > 0 }

let inversion_label = function
  | Unsound_certification -> "unsound-certification"
  | Refine_unsound -> "refine-unsound"
  | Logic_mismatch -> "logic-mismatch"
  | Cert_inversion -> "cert-inversion"
  | Store_stale -> "store-stale"
  | Chan_race_unsound -> "chan-race-unsound"
  | Chan_deadlock_unsound -> "chan-deadlock-unsound"
  | Race_unsound -> "race-unsound"
  | Deadlock_unsound -> "deadlock-unsound"
  | Prune_unsound -> "prune-unsound"
  | Witness_bogus -> "witness-bogus"
  | Above_denning -> "hierarchy-denning"
  | Above_flow_sensitive -> "hierarchy-fs"

let gap_label = function
  | Denning_accepts -> "denning-gap"
  | Flow_sensitive_accepts -> "fs-gap"

let primary v c =
  match c.inversions with
  | inv :: _ -> inversion_label inv
  | [] -> (
    match c.gaps with
    | g :: _ -> gap_label g
    | [] ->
      if v.refine_checked then
        if v.refine_claimed_safe then "refine-accepted" else "refine-rejected"
      else if c.confirmed_rejection then "confirmed-rejection"
      else if v.cfm then "certified-agreement"
      else "unconfirmed-rejection")

let class_labels =
  [
    "unsound-certification";
    "refine-unsound";
    "logic-mismatch";
    "cert-inversion";
    "store-stale";
    "chan-race-unsound";
    "chan-deadlock-unsound";
    "race-unsound";
    "deadlock-unsound";
    "prune-unsound";
    "witness-bogus";
    "hierarchy-denning";
    "hierarchy-fs";
    "denning-gap";
    "fs-gap";
    "confirmed-rejection";
    "certified-agreement";
    "unconfirmed-rejection";
    "refine-accepted";
    "refine-rejected";
  ]
