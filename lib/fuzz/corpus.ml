(* On-disk corpus of shrunk counterexamples: .ifc program + .expect sidecar. *)

module Ast = Ifc_lang.Ast
module Pretty = Ifc_lang.Pretty
module Parser = Ifc_lang.Parser
module Metrics = Ifc_lang.Metrics
module Binding = Ifc_core.Binding
module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Mls = Ifc_lattice.Mls

type expected = {
  cls : string;
  cfm : bool;
  denning : bool;
  fs : bool;
  prove : bool;
  cert : bool;
  interfering : bool;
  race_free : bool;
  deadlock_free : bool;
  must_block : bool;
  chan_race_free : bool;
  chan_deadlock_free : bool;
  lint_findings : int;
  pruned : int;
  witness_ok : bool;
  statements : int;
}

type entry = {
  name : string;
  lattice_name : string;
  binding : string Binding.t;
  program : Ast.program;
  expected : expected;
  note : string option;
}

let lattice_of_name = function
  | "two" -> Ok (Lattice.stringify Chain.two)
  | "three" -> Ok (Lattice.stringify Chain.three)
  | "four" -> Ok (Lattice.stringify Chain.four)
  | "mls" -> Ok (Lattice.stringify Mls.standard)
  | other -> Error (Printf.sprintf "unknown corpus lattice %S" other)

(* Canonical replay parameters. Sidecars are written and replayed with the
   same oracle seed / pair count / state budget, so the [interfering] field
   is reproducible by construction. *)
let replay_ni_seed = 7
let replay_ni_pairs = 8
let replay_max_states = 20_000

let replay_verdicts binding program =
  Oracle.run ~ni_seed:replay_ni_seed ~ni_pairs:replay_ni_pairs
    ~max_states:replay_max_states binding program

let expected_of_verdicts ~cls program (v : Classify.verdicts) =
  {
    cls;
    cfm = v.Classify.cfm;
    denning = v.Classify.denning;
    fs = v.Classify.fs;
    prove = v.Classify.prove;
    cert = v.Classify.cert_ok;
    interfering = v.Classify.ni_violations > 0;
    race_free = v.Classify.lint_race_free;
    deadlock_free = v.Classify.lint_deadlock_free;
    must_block = v.Classify.lint_must_block;
    chan_race_free = v.Classify.lint_chan_race_free;
    chan_deadlock_free = v.Classify.lint_chan_deadlock_free;
    lint_findings = v.Classify.lint_findings;
    pruned = v.Classify.prune_spans;
    witness_ok = v.Classify.witness_ok;
    statements = (Metrics.of_program program).Metrics.statements;
  }

(* ------------------------------------------------------------------ *)
(* Sidecar syntax *)

let sidecar_text ~lattice_name ~binding ~expected ?note () =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "lattice: %s" lattice_name;
  line "class: %s" expected.cls;
  line "cfm: %b" expected.cfm;
  line "denning: %b" expected.denning;
  line "fs: %b" expected.fs;
  line "prove: %b" expected.prove;
  line "cert: %b" expected.cert;
  line "interfering: %b" expected.interfering;
  line "race_free: %b" expected.race_free;
  line "deadlock_free: %b" expected.deadlock_free;
  line "must_block: %b" expected.must_block;
  line "chan_race_free: %b" expected.chan_race_free;
  line "chan_deadlock_free: %b" expected.chan_deadlock_free;
  line "lint_findings: %d" expected.lint_findings;
  line "pruned: %d" expected.pruned;
  line "witness_ok: %b" expected.witness_ok;
  line "statements: %d" expected.statements;
  (match note with None -> () | Some n -> line "note: %s" n);
  List.iter
    (fun (name, cls) -> line "binding: %s : %s" name cls)
    (Binding.bindings binding);
  Buffer.contents buf

let ( let* ) = Result.bind

let parse_bool field = function
  | "true" -> Ok true
  | "false" -> Ok false
  | other -> Error (Printf.sprintf "field %s: expected bool, got %S" field other)

let parse_int field s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "field %s: expected int, got %S" field s)

let parse_sidecar text =
  let fields = Hashtbl.create 16 in
  let bindings = ref [] in
  let* () =
    String.split_on_char '\n' text
    |> List.fold_left
         (fun acc line ->
           let* () = acc in
           let line = String.trim line in
           if line = "" || line.[0] = '#' then Ok ()
           else
             match String.index_opt line ':' with
             | None -> Error (Printf.sprintf "malformed sidecar line %S" line)
             | Some i ->
               let key = String.trim (String.sub line 0 i) in
               let value =
                 String.trim (String.sub line (i + 1) (String.length line - i - 1))
               in
               if key = "binding" then begin
                 bindings := value :: !bindings;
                 Ok ()
               end
               else begin
                 Hashtbl.replace fields key value;
                 Ok ()
               end)
         (Ok ())
  in
  let field key =
    match Hashtbl.find_opt fields key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "sidecar missing field %s" key)
  in
  let* lattice_name = field "lattice" in
  let* lattice = lattice_of_name lattice_name in
  let* cls = field "class" in
  let* cfm = Result.bind (field "cfm") (parse_bool "cfm") in
  let* denning = Result.bind (field "denning") (parse_bool "denning") in
  let* fs = Result.bind (field "fs") (parse_bool "fs") in
  let* prove = Result.bind (field "prove") (parse_bool "prove") in
  let* cert = Result.bind (field "cert") (parse_bool "cert") in
  let* interfering =
    Result.bind (field "interfering") (parse_bool "interfering")
  in
  let* race_free = Result.bind (field "race_free") (parse_bool "race_free") in
  let* deadlock_free =
    Result.bind (field "deadlock_free") (parse_bool "deadlock_free")
  in
  let* must_block = Result.bind (field "must_block") (parse_bool "must_block") in
  (* Channel claims postdate the sidecar format; older entries carry no
     channels, for which both claims hold vacuously. *)
  let optional_bool key default =
    match Hashtbl.find_opt fields key with
    | None -> Ok default
    | Some v -> parse_bool key v
  in
  let* chan_race_free = optional_bool "chan_race_free" true in
  let* chan_deadlock_free = optional_bool "chan_deadlock_free" true in
  let* lint_findings =
    Result.bind (field "lint_findings") (parse_int "lint_findings")
  in
  (* Dataflow fields postdate the sidecar format; older entries carry
     zero pruned arms and a vacuously valid witness. *)
  let optional_int key default =
    match Hashtbl.find_opt fields key with
    | None -> Ok default
    | Some v -> parse_int key v
  in
  let* pruned = optional_int "pruned" 0 in
  let* witness_ok = optional_bool "witness_ok" true in
  let* statements = Result.bind (field "statements") (parse_int "statements") in
  let* binding =
    Binding.of_spec lattice (String.concat "\n" (List.rev !bindings))
  in
  Ok
    ( lattice_name,
      binding,
      {
        cls;
        cfm;
        denning;
        fs;
        prove;
        cert;
        interfering;
        race_free;
        deadlock_free;
        must_block;
        chan_race_free;
        chan_deadlock_free;
        lint_findings;
        pruned;
        witness_ok;
        statements;
      },
      Hashtbl.find_opt fields "note" )

(* ------------------------------------------------------------------ *)
(* Load / write *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text)

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let load_entry dir name =
  let program_path = Filename.concat dir (name ^ ".ifc") in
  let sidecar_path = Filename.concat dir (name ^ ".expect") in
  if not (Sys.file_exists sidecar_path) then
    Error (Printf.sprintf "%s: missing sidecar %s.expect" program_path name)
  else
    let* program =
      (* Entries may be plain programs or linked units; a linked entry
         replays as its whole-program elaboration — the certification
         reference the module system is held to. *)
      let text = read_file program_path in
      if Parser.looks_linked text then
        match Parser.parse_linked text with
        | Ok l -> Ok (Ifc_modsys.Link.elaborate l)
        | Error e -> Error (Fmt.str "%s: %a" program_path Parser.pp_error e)
      else
        match Parser.parse_program text with
        | Ok p -> Ok p
        | Error e -> Error (Fmt.str "%s: %a" program_path Parser.pp_error e)
    in
    let* lattice_name, binding, expected, note =
      Result.map_error
        (fun msg -> Printf.sprintf "%s: %s" sidecar_path msg)
        (parse_sidecar (read_file sidecar_path))
    in
    Ok { name; lattice_name; binding; program; expected; note }

let load dir =
  if not (Sys.file_exists dir) then Ok []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (Filename.chop_suffix_opt ~suffix:".ifc")
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           let* entries = acc in
           let* entry = load_entry dir name in
           Ok (entry :: entries))
         (Ok [])
    |> Result.map List.rev

let write ~dir ~name ~lattice_name ~binding ~expected ?note program =
  mkdirs dir;
  let program_path = Filename.concat dir (name ^ ".ifc") in
  write_file program_path (Pretty.program_to_string program ^ "\n");
  write_file
    (Filename.concat dir (name ^ ".expect"))
    (sidecar_text ~lattice_name ~binding ~expected ?note ());
  program_path

let write_linked ~dir ~name ~lattice_name ~binding ~expected ?note linked =
  mkdirs dir;
  let program_path = Filename.concat dir (name ^ ".ifc") in
  write_file program_path (Pretty.linked_to_string linked ^ "\n");
  write_file
    (Filename.concat dir (name ^ ".expect"))
    (sidecar_text ~lattice_name ~binding ~expected ?note ());
  program_path
