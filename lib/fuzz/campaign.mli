(** Parallel differential fuzzing campaigns.

    A campaign draws [cases] seeded random bound programs — rotating
    through generator profiles covering sequential code, concurrency,
    arrays, semaphore-heavy synchronization and message passing — and
    fans them out over an {!Ifc_pipeline.Pool} of domains. Each case runs
    the full analyzer matrix ({!Oracle.run}); disagreements are
    classified against the paper's hierarchy ({!Classify}); channel
    programs additionally exercise the executable
    distributed-noninterference check and the channel-lint cross-checks.
    Soundness inversions are shrunk to minimal programs on the
    coordinating domain ({!Shrink.minimize}), deduplicated by content
    digest, and persisted to the regression corpus ({!Corpus.write});
    expected strictness gaps are counted.

    Determinism: every case derives its own PRNG purely from
    [(config.seed, case index)] and its oracle seed from that stream, and
    results land in per-case slots aggregated in index order — so the
    summary, the report and the corpus are byte-identical for a fixed
    seed at {e any} worker count. Wall-clock timing is deliberately kept
    out of {!pp_summary} and {!summary_json}; [time_budget] soak runs
    trade this reproducibility for coverage (late cases are marked timed
    out, and which ones depends on scheduling). *)

type config = {
  cases : int;  (** Random cases to draw (the planted case is extra). *)
  seed : int;
  jobs : int;  (** Worker domains. *)
  size_min : int;  (** Requested {!Ifc_lang.Gen} size range. *)
  size_max : int;
  ni_pairs : int;  (** Oracle input pairs per case. *)
  max_states : int;  (** Oracle state-space budget per exploration. *)
  time_budget : float option;  (** Soak deadline in seconds. *)
  shrink_budget : int;  (** {!Shrink.minimize} evaluation budget. *)
  corpus_dir : string option;  (** Where shrunk inversions persist. *)
  store_dir : string option;
      (** Replay cases against the persistent {!Ifc_store.Store} at this
          directory: each case's fresh CFM verdict is compared with the
          stored one under the pipeline's content address (a CFM-only
          {!Ifc_pipeline.Job} over the campaign lattice). Divergence
          classifies as the [store-stale] inversion; misses write the
          honest verdict back, so a second campaign over the same
          directory replays every case. Forced-CFM planted cases never
          touch the store. *)
  plant_inversion : bool;
      (** Test hook ([IFC_FUZZ_PLANT_INVERSION] in the CLI): append one
          case whose program leaks directly while its CFM verdict is
          forcibly overridden to "certified", simulating an unsound
          analyzer. The campaign must flag it, shrink it to the single
          leaking assignment, and persist it with honest verdicts. *)
  plant_cert_inversion : bool;
      (** Test hook ([IFC_FUZZ_PLANT_CERT_INVERSION] in the CLI): append
          one provable case whose certificate round-trip verdict is
          forcibly overridden to "rejected", simulating a broken
          emit/serialize/check pipeline. The campaign must classify it as
          [cert-inversion], shrink it, and persist it with honest
          verdicts. *)
  plant_lint_unsound : bool;
      (** Test hook ([IFC_FUZZ_PLANT_LINT_UNSOUND] in the CLI): append
          one case containing a guaranteed deadlock while the concurrency
          analyzer's claims are forcibly overridden to all-safe,
          simulating an unsound static analysis. The dynamic evidence
          explorations reach the stuck state, so the campaign must
          classify the case as [deadlock-unsound], shrink it to the
          single [wait], and persist it with honest verdicts. *)
  plant_chan_unsound : bool;
      (** Test hook ([IFC_FUZZ_PLANT_CHAN_UNSOUND] in the CLI): append
          one case containing a guaranteed communication deadlock — a
          [recv] on a channel nobody sends on — while the analyzer's
          claims are forcibly overridden to all-safe. The dynamic
          evidence explorations reach the stuck state with the channel
          blocked, so the campaign must classify the case as
          [chan-deadlock-unsound], shrink it to the single [recv], and
          persist it with honest verdicts. *)
  plant_store_stale : bool;
      (** Test hook ([IFC_FUZZ_PLANT_STORE_STALE] in the CLI): before the
          campaign runs, write a store entry for one appended all-low
          case carrying the {e flipped} CFM verdict — a stale or tampered
          artifact. Replay finds it, every honest analyzer disagrees, and
          the campaign must classify the case as [store-stale]. Uses
          [store_dir] when set, else a seed-derived scratch directory. *)
  plant_dataflow_unsound : bool;
      (** Test hook ([IFC_FUZZ_PLANT_DATAFLOW_UNSOUND] in the CLI):
          append {e two} cases exercising the dataflow cross-checks. The
          first forces the oracle's dataflow leg to report a bogus pruned
          arm at the span of a statement every execution steps — the
          exploration's visit witness refutes it, so the case must
          classify as [prune-unsound]. The second is an honestly rejected
          leak whose emitted flow witness has its sink span forcibly
          corrupted before replay — the replay finds no failed check
          there, so the case must classify as [witness-bogus]. Both
          shrink to a single statement and persist with honest
          verdicts. *)
  plant_refine_unsound : bool;
      (** Test hook ([IFC_FUZZ_PLANT_REFINE_UNSOUND] in the CLI): append
          one {!Modfuzz.planted} module pair — a certified two-module
          unit and a replacement that pipes the link-wide secret into its
          low export — with the refinement claim forcibly overridden to
          "accepted". The executor refutes the claim on the swapped unit,
          so the campaign must classify the case as [refine-unsound],
          shrink it to a minimal module pair, and persist the swapped
          unit in linked syntax with honest verdicts. *)
  refine_cases : int;
      (** Honest refinement cases ({!Modfuzz.generate}) appended after
          every planted case: module pair plus mutated replacement, the
          compositional claim taken at face value, claimed-safe swaps
          dynamically attacked by the executor. On a healthy toolchain
          all of them land on [refine-accepted] / [refine-rejected]. *)
}

val default : config

val profiles : (string * Ifc_lang.Gen.config) list
(** The generator rotation, in case-index order: [seq], [conc], [arr],
    [sem], [chan]. *)

type counterexample = {
  case_index : int;
  profile : string;
  label : string;  (** The inversion's {!Classify.inversion_label}. *)
  program : Ifc_lang.Ast.program;  (** Shrunk. *)
  binding : string Ifc_core.Binding.t;
  original_statements : int;
  shrunk_statements : int;
  shrink : Shrink.stats;
  digest : string;  (** Content digest of (shrunk program, binding). *)
  corpus_path : string option;
      (** [None] when no corpus directory was given or an identical
          counterexample was already persisted this campaign. *)
}

type summary = {
  seed : int;
  cases : int;
  completed : int;
  timed_out : int;
  errors : int;  (** Worker exceptions (always a bug; exit code 1). *)
  class_counts : (string * int) list;
      (** Primary label per case, tallied over {!Classify.class_labels}
          in canonical order. *)
  inversion_cases : int;  (** Cases with at least one inversion. *)
  gap_cases : int;  (** Cases with at least one expected gap. *)
  oracle_pairs_tested : int;
  oracle_pairs_skipped : int;
  shrink_steps : int;
  shrink_evals : int;
  counterexamples : counterexample list;
  elapsed_ns : int64;  (** For logs and benches only — never printed. *)
}

val run : ?sink:Ifc_pipeline.Telemetry.sink -> config -> summary
(** Execute the campaign. Per-case, per-shrink and summary events go to
    [sink] as JSONL (event order across workers is nondeterministic;
    everything else is not). *)

val pp_summary : Format.formatter -> summary -> unit
(** The human report — deterministic for a fixed seed at any worker
    count (no timing, no worker count). *)

val summary_json : summary -> string
(** One machine-readable JSON line with the same determinism guarantee. *)

val exit_code : summary -> int
(** [2] if any inversion was found, [1] on worker errors, else [0]. *)
