(** One pass of the full analyzer matrix over a single bound program.

    Runs Denning (concurrency-ignoring), CFM, the flow-sensitive
    extension, the Theorem-1 logic decision, the certificate round-trip
    (when a proof exists: serialize it, re-parse the bytes, validate with
    the independent {!Ifc_cert.Checker}), and the semantic
    noninterference oracle (bounded exploration, termination-insensitive,
    observer at the lattice bottom), and packs the verdicts for
    {!Classify.classify}.

    The noninterference oracle is seeded explicitly so a verdict tuple is
    a pure function of [(program, binding, ni_seed, ni_pairs,
    max_states)] — campaigns replay bit-identically whatever the worker
    count.

    [override_cfm] substitutes a forced CFM verdict while every other
    analyzer stays honest; [override_cert] does the same for the
    certificate round-trip verdict. They exist for the campaign's
    planted-inversion test hooks (simulating an unsound certifier or a
    broken certificate pipeline end-to-end) and for what-if experiments;
    production callers never pass them. *)

val run :
  ?override_cfm:bool ->
  ?override_cert:bool ->
  ni_seed:int ->
  ni_pairs:int ->
  max_states:int ->
  string Ifc_core.Binding.t ->
  Ifc_lang.Ast.program ->
  Classify.verdicts
