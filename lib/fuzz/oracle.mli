(** One pass of the full analyzer matrix over a single bound program.

    Runs Denning (concurrency-ignoring), CFM, the flow-sensitive
    extension, the Theorem-1 logic decision, the certificate round-trip
    (when a proof exists: serialize it, re-parse the bytes, validate with
    the independent {!Ifc_cert.Checker}), the semantic noninterference
    oracle (bounded exploration, termination-insensitive, observer at the
    lattice bottom), the static concurrency analyzer
    ({!Ifc_analysis.Analyze}), and two bounded explorations gathering the
    dynamic evidence that cross-checks the analyzer's claims (one from
    the all-zero store, one from a seed-derived store), and packs the
    verdicts for {!Classify.classify}.

    The noninterference oracle and the evidence explorations are seeded
    explicitly so a verdict tuple is a pure function of [(program,
    binding, ni_seed, ni_pairs, max_states)] — campaigns replay
    bit-identically whatever the worker count.

    [override_cfm] substitutes a forced CFM verdict while every other
    analyzer stays honest; [override_cert] does the same for the
    certificate round-trip verdict; [override_lint:true] forces the
    concurrency analyzer's claims to all-safe ([race_free],
    [deadlock_free], no [must_block], zero findings) while the dynamic
    evidence stays honest — exactly the shape of an unsound analyzer
    ([override_lint:false] forces the all-unsafe claims instead). They
    exist for the campaign's planted-inversion test hooks and for what-if
    experiments; production callers never pass them.

    [override_dataflow:`Prune] injects a bogus pruned span (the span of
    a statement the exploration actually executed) into the dataflow
    leg, and [`Witness] corrupts an emitted flow witness's sink span
    before replay — the two planted-unsoundness hooks behind the
    [prune-unsound] and [witness-bogus] inversion classes.

    [stored_cfm] is the CFM verdict a persistent artifact store returned
    for this program, when the campaign is replaying against one; a
    mismatch with the freshly computed verdict sets
    [Classify.store_divergent] (the [store-stale] inversion). Omitted,
    the field is [false]. *)

val run :
  ?override_cfm:bool ->
  ?override_cert:bool ->
  ?override_lint:bool ->
  ?override_dataflow:[ `Prune | `Witness ] ->
  ?stored_cfm:bool ->
  ni_seed:int ->
  ni_pairs:int ->
  max_states:int ->
  string Ifc_core.Binding.t ->
  Ifc_lang.Ast.program ->
  Classify.verdicts
