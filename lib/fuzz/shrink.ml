(* Greedy, strictly-decreasing minimization of failing programs. *)

module Ast = Ifc_lang.Ast
module Gen = Ifc_lang.Gen
module Metrics = Ifc_lang.Metrics

type stats = { steps : int; evals : int }

let minimize ?(budget = 300) ~keep p =
  if not (keep p) then invalid_arg "Shrink.minimize: keep rejects the input";
  let evals = ref 1 in
  let steps = ref 0 in
  let rec go current size =
    (* First strictly smaller candidate that still fails wins; restart the
       candidate stream from the new program. *)
    let next =
      Seq.find
        (fun c ->
          Metrics.length c < size
          && !evals < budget
          && begin
               incr evals;
               keep c
             end)
        (Gen.shrink_program current)
    in
    match next with
    | Some c when !evals < budget ->
      incr steps;
      go c (Metrics.length c)
    | Some c ->
      incr steps;
      c
    | None -> current
  in
  let minimal = go p (Metrics.length p) in
  (minimal, { steps = !steps; evals = !evals })
