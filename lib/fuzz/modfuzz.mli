(** The module-refinement fuzzing leg: generate a linked unit and a
    candidate replacement for one of its modules, let the compositional
    toolchain claim the swap safe, and set the executor on the claim.

    A case is a {e module pair}: a two-module linked unit (source and
    sink over a shared export, plus a main program that also declares a
    link-wide [secret]) and a replacement for the source module obtained
    by mutating its interface or body. [evaluate] computes

    - the {e claim}: {!Ifc_modsys.Link.certify} accepts the base unit and
      {!Ifc_modsys.Refine.check_against} accepts the replacement — by
      refinement soundness, the swapped unit must then stay
      noninterferent;
    - the {e refutation}: the semantic oracle run on the elaboration of
      the swapped unit witnesses distinguishable low observables.

    A case with both is the [refine-unsound] inversion
    ({!Classify.Refine_unsound}) — a bug in the summary comparison by
    construction, since the honest checker is sound. [planted] fabricates
    one for the campaign's [IFC_FUZZ_PLANT_REFINE_UNSOUND] hook: the
    replacement pipes [secret] into the low export, the honest rejection
    is overridden, and the executor refutes the forced claim. *)

module Lattice := Ifc_lattice.Lattice

type case = {
  unit_ : Ifc_lang.Ast.linked;  (** The base unit, link-certifiable or not. *)
  replacement : Ifc_lang.Ast.module_unit;
      (** Candidate stand-in for the unit's module of the same name. *)
}

val generate : string Lattice.t -> Ifc_support.Prng.t -> case
(** A seeded random case: source/sink unit plus a mutated source. *)

val planted : string Lattice.t -> case
(** The fabricated refine-unsound case (see above); its honest claim is
    [false], so callers force it. *)

val swapped : case -> Ifc_lang.Ast.linked
(** The unit with the replacement standing in. *)

val elaborated : case -> Ifc_lang.Ast.program
(** Whole-program elaboration of {!swapped} — what the executor runs. *)

val case_binding : lattice:string Lattice.t -> case -> string Ifc_core.Binding.t
(** The swapped unit's linked binding (empty on structural failure). *)

val statements : case -> int
(** Statement count of {!elaborated} — the shrinking measure. *)

val to_text : case -> string
(** {!swapped} in concrete linked syntax (corpus persistence). *)

val evaluate :
  ?override_claim:bool ->
  lattice:string Lattice.t ->
  ni_seed:int ->
  ni_pairs:int ->
  max_states:int ->
  case ->
  bool * bool * int * int
(** [(claimed, leak, pairs_tested, pairs_skipped)]. The oracle only runs
    when the claim holds ([claimed = false] reports no leak and no
    pairs); [override_claim] substitutes a forced claim while the
    refutation stays honest — the planted-case hook. *)

val verdicts :
  claimed:bool -> leak:bool -> tested:int -> skipped:int -> Classify.verdicts
(** Pack a refinement evaluation as a verdict tuple: the refine fields
    carry the case, every program-matrix field is neutral, and
    [refine_checked] routes {!Classify.primary} to [refine-accepted] /
    [refine-rejected] / [refine-unsound]. *)

val shrink :
  budget:int -> keep:(case -> bool) -> case -> case * Shrink.stats
(** Minimize a failing case to a minimal module pair: each body —
    replacement, unit modules, main — is shrunk in turn through
    {!Shrink.minimize} with [keep] re-evaluated over the reassembled
    case (guarded by linked well-formedness), the budget split evenly. *)
