(** Greedy counterexample minimization over {!Ifc_lang.Gen.shrink_program}.

    Starting from a failing program, repeatedly move to the first shrink
    candidate that is strictly smaller (by {!Ifc_lang.Metrics.length})
    and still satisfies [keep]. Equal-size candidates are rejected, so
    the measure decreases every accepted step and minimization terminates
    after at most [Metrics.length p] steps regardless of the shrinker's
    candidate set. [budget] additionally caps the number of [keep]
    evaluations — the expensive part when [keep] re-runs the analyzer
    matrix and the semantic oracle. *)

type stats = {
  steps : int;  (** Accepted shrink steps. *)
  evals : int;  (** [keep] evaluations, accepted or not. *)
}

val minimize :
  ?budget:int ->
  keep:(Ifc_lang.Ast.program -> bool) ->
  Ifc_lang.Ast.program ->
  Ifc_lang.Ast.program * stats
(** [minimize ~keep p] requires [keep p = true] and returns a locally
    minimal program satisfying [keep], with shrink statistics. [budget]
    defaults to 300 evaluations; on exhaustion the best program found so
    far is returned. *)
