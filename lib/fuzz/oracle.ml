(* The analyzer matrix: five verdicts over one bound program. *)

module Ast = Ifc_lang.Ast
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Fs = Ifc_core.Flow_sensitive
module Invariance = Ifc_logic_gen.Invariance
module Ni = Ifc_exec.Noninterference
module Lattice = Ifc_lattice.Lattice

(* The certificate round-trip leg: serialize the proof, re-parse the
   exact bytes, and run the independent checker. Any break anywhere in
   that pipeline — emission, parsing, validation — is a cert inversion. *)
let cert_round_trip binding (p : Ast.program) proof =
  let cert = Ifc_cert.Cert.of_proof ~binding ~program:p proof in
  match Ifc_cert.Cert.parse (Ifc_cert.Cert.to_string cert) with
  | Error _ -> false
  | Ok parsed -> Result.is_ok (Ifc_cert.Checker.check parsed p)

let run ?override_cfm ?override_cert ~ni_seed ~ni_pairs ~max_states binding
    (p : Ast.program) =
  let cfm =
    match override_cfm with
    | Some forced -> forced
    | None -> Cfm.certified binding p.Ast.body
  in
  let denning = Denning.certified ~on_concurrency:`Ignore binding p.Ast.body in
  let fs = Fs.certified binding p.Ast.body in
  let witness = Invariance.witness binding p.Ast.body in
  let prove = Result.is_ok witness in
  let cert_ok =
    match override_cert with
    | Some forced -> forced
    | None -> (
      match witness with
      | Error _ -> true
      | Ok proof -> cert_round_trip binding p proof)
  in
  let lat = Binding.lattice binding in
  let ni =
    Ni.test ~seed:ni_seed ~pairs:ni_pairs ~max_states
      ~observer:lat.Lattice.bottom binding p
  in
  {
    Classify.cfm;
    denning;
    fs;
    prove;
    cert_ok;
    ni_tested = ni.Ni.pairs_tested;
    ni_skipped = ni.Ni.pairs_skipped;
    ni_violations = List.length ni.Ni.violations;
  }
