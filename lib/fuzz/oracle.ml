(* The analyzer matrix: the full verdict tuple over one bound program. *)

module Ast = Ifc_lang.Ast
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Fs = Ifc_core.Flow_sensitive
module Invariance = Ifc_logic_gen.Invariance
module Ni = Ifc_exec.Noninterference
module Explore = Ifc_exec.Explore
module Step = Ifc_exec.Step
module Lattice = Ifc_lattice.Lattice
module Prng = Ifc_support.Prng
module Analyze = Ifc_analysis.Analyze
module Parser = Ifc_lang.Parser
module Pretty = Ifc_lang.Pretty
module Loc = Ifc_lang.Loc
module Witness = Ifc_dataflow.Witness

(* The certificate round-trip leg: serialize the proof, re-parse the
   exact bytes, and run the independent checker. Any break anywhere in
   that pipeline — emission, parsing, validation — is a cert inversion. *)
let cert_round_trip binding (p : Ast.program) proof =
  let cert = Ifc_cert.Cert.of_proof ~binding ~program:p proof in
  match Ifc_cert.Cert.parse (Ifc_cert.Cert.to_string cert) with
  | Error _ -> false
  | Ok parsed -> Result.is_ok (Ifc_cert.Checker.check parsed p)

(* Dynamic cross-check of the concurrency analyzer: two bounded
   explorations, one from the default all-zero store and one from a
   seed-derived store. Witnesses (a race, a reachable deadlock, a
   reachable terminal) are definitive whatever the bound; completeness
   is recorded so absence-based reasoning can be gated on it. *)
(* Generated programs carry dummy spans; the span-level dataflow
   cross-check needs real ones. Pretty-print and re-parse: the AST is
   identical up to spans, so every other leg is unaffected. *)
let with_spans (p : Ast.program) =
  match Parser.parse_program (Pretty.program_to_string p) with
  | Ok q -> q
  | Error _ -> p

let span_contains ~(outer : Loc.span) ~(inner : Loc.span) =
  let leq (a : Loc.pos) (b : Loc.pos) =
    a.Loc.line < b.Loc.line || (a.Loc.line = b.Loc.line && a.Loc.col <= b.Loc.col)
  in
  leq outer.Loc.start inner.Loc.start && leq inner.Loc.stop outer.Loc.stop

let dynamic_evidence ~ni_seed ~max_states (p : Ast.program) =
  let int_vars =
    List.filter_map
      (function
        | Ast.Var_decl { name; _ } -> Some name
        | Ast.Arr_decl _ | Ast.Sem_decl _ | Ast.Chan_decl _ -> None)
      p.Ast.decls
  in
  let rng = Prng.create (ni_seed lxor 0x51ca5) in
  let seeded = List.map (fun v -> (v, Prng.int rng 8)) int_vars in
  let runs =
    [
      Explore.explore_program ~max_states p;
      Explore.explore_program ~max_states ~inputs:seeded p;
    ]
  in
  let any f = List.exists f runs and all f = List.for_all f runs in
  ( any (fun s -> s.Explore.races <> []),
    any (fun s -> s.Explore.deadlocks <> []),
    any (fun s -> s.Explore.terminals <> []),
    all (fun s -> s.Explore.complete && s.Explore.faults = []),
    any (fun s -> s.Explore.chan_races <> []),
    any (fun s -> s.Explore.chan_blocked <> []),
    List.concat_map (fun s -> s.Explore.visited_spans) runs )

let run ?override_cfm ?override_cert ?override_lint ?override_dataflow
    ?stored_cfm ~ni_seed ~ni_pairs ~max_states binding (p : Ast.program) =
  let pn = with_spans p in
  let cfm =
    match override_cfm with
    | Some forced -> forced
    | None -> Cfm.certified binding p.Ast.body
  in
  let denning = Denning.certified ~on_concurrency:`Ignore binding p.Ast.body in
  let fs = Fs.certified binding p.Ast.body in
  let witness = Invariance.witness binding p.Ast.body in
  let prove = Result.is_ok witness in
  let cert_ok =
    match override_cert with
    | Some forced -> forced
    | None -> (
      match witness with
      | Error _ -> true
      | Ok proof -> cert_round_trip binding p proof)
  in
  let lat = Binding.lattice binding in
  let ni =
    Ni.test ~seed:ni_seed ~pairs:ni_pairs ~max_states
      ~observer:lat.Lattice.bottom binding p
  in
  let ( lint_race_free,
        lint_deadlock_free,
        lint_must_block,
        lint_chan_race_free,
        lint_chan_deadlock_free,
        lint_findings ) =
    match override_lint with
    | Some true -> (true, true, false, true, true, 0)
    | Some false -> (false, false, true, false, false, 1)
    | None ->
      let report = Analyze.run p in
      ( report.Analyze.claims.Analyze.race_free,
        report.Analyze.claims.Analyze.deadlock_free,
        report.Analyze.claims.Analyze.must_block,
        report.Analyze.claims.Analyze.chan_race_free,
        report.Analyze.claims.Analyze.chan_deadlock_free,
        List.length report.Analyze.findings )
  in
  let dyn_race, dyn_deadlock, dyn_terminal, dyn_complete, dyn_chan_race,
      dyn_chan_deadlock, visited_spans =
    dynamic_evidence ~ni_seed ~max_states pn
  in
  (* The dataflow leg: prune on the span-bearing program, then refute —
     a pruned arm is claimed unreachable on EVERY input, so one visited
     statement inside it, on any explored run, is a definitive
     counterexample. [`Prune] forces a bogus pruned span (an executed
     statement's own span) to test that this detector fires. *)
  let pruned_spans =
    let honest =
      List.filter_map
        (fun (pr : Ifc_dataflow.Prune.pruned) ->
          if Loc.is_dummy pr.Ifc_dataflow.Prune.p_span then None
          else Some pr.Ifc_dataflow.Prune.p_span)
        (Ifc_dataflow.Prune.analyze pn).Ifc_dataflow.Prune.pruned
    in
    match (override_dataflow, visited_spans) with
    | Some `Prune, sp :: _ -> sp :: honest
    | _ -> honest
  in
  let prune_violated =
    List.exists
      (fun outer ->
        List.exists (fun inner -> span_contains ~outer ~inner) visited_spans)
      pruned_spans
  in
  (* The witness leg: on rejection, produce the source-to-sink chain and
     replay it step by step. [`Witness] corrupts the sink span before the
     replay — a chain pointing at a check that never failed must be
     caught. *)
  let witness_checked, witness_ok =
    match Witness.explain binding pn with
    | None -> (false, true)
    | Some w ->
      let w =
        match override_dataflow with
        | Some `Witness ->
          let shift (pos : Loc.pos) = { pos with Loc.line = pos.Loc.line + 1000 } in
          {
            w with
            Witness.w_sink_span =
              {
                Loc.start = shift w.Witness.w_sink_span.Loc.start;
                stop = shift w.Witness.w_sink_span.Loc.stop;
              };
          }
        | _ -> w
      in
      (true, Witness.replay binding pn w)
  in
  {
    Classify.cfm;
    denning;
    fs;
    prove;
    cert_ok;
    ni_tested = ni.Ni.pairs_tested;
    ni_skipped = ni.Ni.pairs_skipped;
    ni_violations = List.length ni.Ni.violations;
    lint_race_free;
    lint_deadlock_free;
    lint_must_block;
    lint_chan_race_free;
    lint_chan_deadlock_free;
    lint_findings;
    dyn_race;
    dyn_deadlock;
    dyn_terminal;
    dyn_complete;
    dyn_chan_race;
    dyn_chan_deadlock;
    store_divergent =
      (match stored_cfm with
      | Some stored -> not (Bool.equal stored cfm)
      | None -> false);
    prune_spans = List.length pruned_spans;
    prune_violated;
    witness_checked;
    witness_ok;
    (* The refinement leg runs on module pairs, not plain programs; see
       Modfuzz. *)
    refine_checked = false;
    refine_claimed_safe = false;
    refine_dyn_leak = false;
  }
