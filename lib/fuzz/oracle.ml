(* The analyzer matrix: five verdicts over one bound program. *)

module Ast = Ifc_lang.Ast
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Fs = Ifc_core.Flow_sensitive
module Invariance = Ifc_logic.Invariance
module Ni = Ifc_exec.Noninterference
module Lattice = Ifc_lattice.Lattice

let run ?override_cfm ~ni_seed ~ni_pairs ~max_states binding (p : Ast.program) =
  let cfm =
    match override_cfm with
    | Some forced -> forced
    | None -> Cfm.certified binding p.Ast.body
  in
  let denning = Denning.certified ~on_concurrency:`Ignore binding p.Ast.body in
  let fs = Fs.certified binding p.Ast.body in
  let prove = Invariance.decide binding p.Ast.body in
  let lat = Binding.lattice binding in
  let ni =
    Ni.test ~seed:ni_seed ~pairs:ni_pairs ~max_states
      ~observer:lat.Lattice.bottom binding p
  in
  {
    Classify.cfm;
    denning;
    fs;
    prove;
    ni_tested = ni.Ni.pairs_tested;
    ni_skipped = ni.Ni.pairs_skipped;
    ni_violations = List.length ni.Ni.violations;
  }
