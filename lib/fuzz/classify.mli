(** The disagreement taxonomy of the differential fuzzing campaign.

    Every generated program is pushed through the whole analyzer matrix —
    Denning, CFM, the flow-sensitive extension, the Theorem-1 logic
    decision, and the semantic noninterference oracle — and the verdict
    tuple is classified against the paper's known hierarchy:

    - Theorems 1 and 2: the logic proves exactly the CFM-certified
      programs, so [prove <> cfm] is a soundness {e inversion}.
    - §5 relative strength: CFM sits strictly below both Denning and the
      flow-sensitive analysis, so [cfm && not denning] (or [not fs]) is
      an inversion, while [denning && not cfm] / [fs && not cfm] are
      {e expected strictness gaps} (the §4.3 synchronization channels and
      the §5.2 [x := 0; y := x] shape respectively).
    - Semantic soundness: a CFM-certified program exhibiting real
      interference under the oracle is the worst inversion of all.
    - Lint soundness: the static concurrency analyzer's safety claims
      ({!Ifc_analysis.Analyze.claims}) are cross-checked against dynamic
      exploration. A witnessed interleaving race under a [race_free]
      claim, a reachable deadlock under [deadlock_free], or a reachable
      terminal under [must_block] is an inversion — the dynamic witness
      is definitive even when exploration is bounded, so these labels
      never depend on completeness.

    Inversions are bugs by construction; gaps are the paper's claims made
    observable and are merely counted. *)

type verdicts = {
  cfm : bool;
  denning : bool;  (** [~on_concurrency:`Ignore] — the historical reading. *)
  fs : bool;  (** The flow-sensitive §6 extension. *)
  prove : bool;  (** A checked completely invariant flow proof exists. *)
  cert_ok : bool;
      (** The certificate round-trip: when a proof exists, its serialized
          certificate re-parses and the independent checker accepts it.
          Vacuously [true] when [prove] is [false] — there is nothing to
          certify. *)
  ni_tested : int;  (** Input pairs the oracle explored to completion. *)
  ni_skipped : int;  (** Pairs abandoned at the state-space budget. *)
  ni_violations : int;  (** Pairs with distinguishable low observables. *)
  lint_race_free : bool;  (** Static claim: no conflicting MHP accesses. *)
  lint_deadlock_free : bool;
      (** Static claim: no execution blocks, even transiently. *)
  lint_must_block : bool;  (** Static claim: no execution terminates. *)
  lint_chan_race_free : bool;
      (** Static claim: no same-endpoint channel contention. *)
  lint_chan_deadlock_free : bool;
      (** Static claim: no execution blocks on a channel, even
          transiently. *)
  lint_findings : int;  (** Total findings the analyzer reported. *)
  dyn_race : bool;  (** Exploration witnessed co-enabled conflicting accesses. *)
  dyn_deadlock : bool;  (** Exploration reached a stuck state. *)
  dyn_terminal : bool;  (** Exploration reached a terminated state. *)
  dyn_complete : bool;
      (** Every exploration backing the [dyn_*] fields finished within
          its state budget. Witnesses are definitive regardless; only
          {e absence} claims need this. *)
  dyn_chan_race : bool;
      (** Exploration witnessed two co-enabled same-kind operations on
          one channel (send/send or recv/recv). *)
  dyn_chan_deadlock : bool;
      (** Exploration reached a stuck state with a blocked channel
          operation (send on full, recv on empty). *)
  store_divergent : bool;
      (** A persistent-store replay returned a CFM verdict different from
          the freshly computed one — a stale or corrupted artifact.
          Always [false] when no store replay ran. *)
  prune_spans : int;
      (** Statically pruned arms (statements claimed unreachable on every
          input) this case's dataflow leg reported. *)
  prune_violated : bool;
      (** Exploration visited a statement inside a pruned arm — direct
          refutation of the unreachability claim. A visit witness is
          definitive whatever the exploration bound. *)
  witness_checked : bool;
      (** The program was rejected and a flow witness was produced and
          replayed ({!Ifc_dataflow.Witness.replay}). *)
  witness_ok : bool;
      (** The replay validated the witness chain. Vacuously [true] when
          [witness_checked] is [false]. *)
  refine_checked : bool;
      (** This case exercised the module-refinement leg: a linked unit
          was certified compositionally and a candidate replacement was
          judged by {!Ifc_modsys.Refine}. Always [false] for plain
          program cases. *)
  refine_claimed_safe : bool;
      (** The compositional toolchain's claim: the base unit link
          certifies {e and} the replacement passes the refinement check —
          so every certified link must stay certified after the swap. *)
  refine_dyn_leak : bool;
      (** The executor refuted the claim: the noninterference oracle
          witnessed distinguishable low observables on the elaboration of
          the {e swapped} unit. *)
}

type inversion =
  | Unsound_certification
      (** CFM certified, yet the oracle exhibits interference. *)
  | Refine_unsound
      (** The refinement checker accepted a replacement for a certified
          link, yet the executor witnessed interference on the swapped
          unit — a violation of refinement soundness
          ({!Ifc_modsys.Refine}). *)
  | Logic_mismatch  (** [prove <> cfm]: a Theorem 1/2 equivalence break. *)
  | Cert_inversion
      (** The decision procedure proved the program but the emitted
          certificate fails the independent checker — the emit/check
          pipeline broke. *)
  | Store_stale
      (** A stored verdict replayed from the persistent artifact store
          diverges from the freshly computed one. *)
  | Chan_race_unsound
      (** The channel lint claimed no same-endpoint contention but
          exploration witnessed co-enabled same-kind channel
          operations. *)
  | Chan_deadlock_unsound
      (** The channel lint claimed channel-deadlock-freedom but
          exploration reached a stuck state with a blocked channel. *)
  | Race_unsound
      (** The analyzer claimed [race_free] but exploration witnessed two
          co-enabled conflicting accesses. *)
  | Deadlock_unsound
      (** The analyzer claimed [deadlock_free] but exploration reached a
          stuck state, or claimed [must_block] but exploration reached a
          terminal. *)
  | Prune_unsound
      (** The dataflow analysis pruned an arm as unreachable on every
          input, yet a bounded exploration stepped a statement inside
          it. *)
  | Witness_bogus
      (** An emitted flow witness failed its own step-by-step replay
          against the certification it purports to explain. *)
  | Above_denning  (** CFM certified but Denning rejects. *)
  | Above_flow_sensitive  (** CFM certified but flow-sensitive rejects. *)

type gap =
  | Denning_accepts  (** Denning certified, CFM rejects (global flows). *)
  | Flow_sensitive_accepts  (** FS accepts, CFM rejects (§5.2 shape). *)

type t = {
  inversions : inversion list;  (** Empty on a healthy toolchain. *)
  gaps : gap list;  (** Expected strictness gaps, counted not fixed. *)
  confirmed_rejection : bool;
      (** CFM rejected and the oracle found a real interference witness —
          the rejection is semantically vindicated. *)
}

val classify : verdicts -> t

val inversion_label : inversion -> string

val gap_label : gap -> string

val primary : verdicts -> t -> string
(** The single most severe label for a case: inversions (worst first),
    then gaps, then ["confirmed-rejection"], ["certified-agreement"], or
    ["unconfirmed-rejection"]. *)

val class_labels : string list
(** Every label {!primary} can produce, in severity order — the stable
    row order of campaign reports. *)
