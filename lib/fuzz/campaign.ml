(* The campaign driver: generate, fan out, classify, shrink, persist. *)

module Ast = Ifc_lang.Ast
module Gen = Ifc_lang.Gen
module Metrics = Ifc_lang.Metrics
module Pretty = Ifc_lang.Pretty
module Vars = Ifc_lang.Vars
module Wellformed = Ifc_lang.Wellformed
module Binding = Ifc_core.Binding
module Chain = Ifc_lattice.Chain
module Lattice = Ifc_lattice.Lattice
module Sset = Ifc_support.Sset
module Prng = Ifc_support.Prng
module Pool = Ifc_pipeline.Pool
module Telemetry = Ifc_pipeline.Telemetry
module Job = Ifc_pipeline.Job
module Store = Ifc_store.Store

type config = {
  cases : int;
  seed : int;
  jobs : int;
  size_min : int;
  size_max : int;
  ni_pairs : int;
  max_states : int;
  time_budget : float option;
  shrink_budget : int;
  corpus_dir : string option;
  store_dir : string option;
  plant_inversion : bool;
  plant_cert_inversion : bool;
  plant_lint_unsound : bool;
  plant_chan_unsound : bool;
  plant_store_stale : bool;
  plant_dataflow_unsound : bool;
  plant_refine_unsound : bool;
  refine_cases : int;
}

let default =
  {
    cases = 200;
    seed = 0;
    jobs = 1;
    size_min = 4;
    size_max = 12;
    ni_pairs = 4;
    max_states = 4_000;
    time_budget = None;
    shrink_budget = 300;
    corpus_dir = None;
    store_dir = None;
    plant_inversion = false;
    plant_cert_inversion = false;
    plant_lint_unsound = false;
    plant_chan_unsound = false;
    plant_store_stale = false;
    plant_dataflow_unsound = false;
    plant_refine_unsound = false;
    refine_cases = 0;
  }

(* The campaign lattice. All fuzzing runs over the paper's two-point
   scheme: it is where every known analyzer disagreement already shows,
   and a single scheme keeps oracle budgets predictable. *)
let lattice = Lattice.stringify Chain.two

let lattice_name = "two"

let profiles =
  [
    ("seq", Gen.sequential);
    ("conc", Gen.default);
    ("arr", Gen.with_arrays);
    ("sem", { Gen.default with Gen.sems = [ "s"; "t"; "u" ]; max_branch = 3 });
    ("chan", Gen.with_channels);
  ]

type counterexample = {
  case_index : int;
  profile : string;
  label : string;
  program : Ast.program;
  binding : string Binding.t;
  original_statements : int;
  shrunk_statements : int;
  shrink : Shrink.stats;
  digest : string;
  corpus_path : string option;
}

type summary = {
  seed : int;
  cases : int;
  completed : int;
  timed_out : int;
  errors : int;
  class_counts : (string * int) list;
  inversion_cases : int;
  gap_cases : int;
  oracle_pairs_tested : int;
  oracle_pairs_skipped : int;
  shrink_steps : int;
  shrink_evals : int;
  counterexamples : counterexample list;
  elapsed_ns : int64;
}

(* ------------------------------------------------------------------ *)
(* Per-case work *)

(* Everything a case needs is derived from (campaign seed, index) alone,
   so cases are order- and worker-independent. *)
let case_rng seed index = Prng.create ((seed * 0x1000003) lxor index)

(* Retained only for inversions: exactly what re-running the predicate
   during shrinking needs. For program cases that is the program, its
   binding, the forced CFM, cert and lint verdicts (planted cases), the
   store lookup for replaying candidates against the persistent store,
   and the case's oracle seed. For refinement cases it is the module
   pair, the forced claim (the planted case) and the oracle seed. *)
type payload =
  | P_program of
      (Ast.program
      * string Binding.t
      * bool option
      * bool option
      * bool option
      * [ `Prune | `Witness ] option
      * (Ast.program -> bool option)
      * int)
  | P_refine of Modfuzz.case * bool option * int

type outcome = {
  index : int;
  o_profile : string;
  primary : string;
  inversion_labels : string list;
  gap_labels : string list;
  verdicts : Classify.verdicts;
  statements : int;
  payload : payload option;
}

type slot = Done of outcome | Timed_out

let random_binding rng (p : Ast.program) =
  let ints, arrays, sems, chans = Vars.declared p in
  let names =
    Sset.elements
      (Sset.union ints (Sset.union arrays (Sset.union sems chans)))
  in
  Binding.make lattice ~default:lattice.Lattice.bottom
    (List.map
       (fun v ->
         (v, if Prng.bool rng then lattice.Lattice.top else lattice.Lattice.bottom))
       names)

let generate_case rng profile_name cfg_gen ~size =
  let gen =
    if cfg_gen.Gen.allow_concurrency && cfg_gen.Gen.sems <> [] then
      Gen.program_balanced
    else Gen.program
  in
  ignore profile_name;
  gen rng cfg_gen ~size

(* The planted soundness inversion (test hook): a padded program whose
   middle statement leaks [x] (high) into [y] (low) directly, with the
   CFM verdict forced to "certified". Every honest analyzer and the
   oracle see the leak, so the case classifies as every inversion kind at
   once and shrinks to the single statement [y := x]. *)
let planted_case () =
  let body =
    Ast.seq
      [
        Ast.assign "p" (Ast.Int 3);
        Ast.skip;
        Ast.assign "y" (Ast.Var "x");
        Ast.assign "q" (Ast.Binop (Ast.Add, Ast.Var "p", Ast.Int 1));
        Ast.skip;
      ]
  in
  let program = Wellformed.infer_decls (Ast.program body) in
  let binding =
    Binding.make lattice ~default:lattice.Lattice.bottom
      [ ("x", lattice.Lattice.top) ]
  in
  (program, binding)

(* The planted certificate inversion (test hook): a padded, provable
   all-low program whose certificate round-trip verdict is forced to
   "rejected". Every honest analyzer agrees the program is fine, so the
   only inversion is cert-inversion, and it shrinks to a single
   statement. *)
(* The planted lint-unsoundness (test hook): a padded program whose
   middle statement waits on a semaphore nobody ever signals — a
   guaranteed deadlock — with the concurrency analyzer's claims forced to
   all-safe. The dynamic evidence explorations reach the stuck state, so
   the case classifies as deadlock-unsound and shrinks to the single
   [wait(s)]. *)
let planted_lint_case () =
  let body =
    Ast.seq
      [
        Ast.assign "p" (Ast.Int 3);
        Ast.skip;
        Ast.wait "s";
        Ast.assign "q" (Ast.Binop (Ast.Add, Ast.Var "p", Ast.Int 1));
        Ast.skip;
      ]
  in
  let program = Wellformed.infer_decls (Ast.program body) in
  let binding = Binding.make lattice ~default:lattice.Lattice.bottom [] in
  (program, binding)

(* The planted channel-unsoundness (test hook): a padded program whose
   middle statement receives from a channel nobody ever sends on — a
   guaranteed communication deadlock — with the analyzer's claims forced
   to all-safe. The dynamic evidence explorations reach the stuck state
   with the channel blocked, so the case classifies as
   chan-deadlock-unsound and shrinks to the single [recv(c, y)]. *)
let planted_chan_case () =
  let body =
    Ast.seq
      [
        Ast.assign "p" (Ast.Int 3);
        Ast.skip;
        Ast.recv "c" "y";
        Ast.assign "q" (Ast.Binop (Ast.Add, Ast.Var "p", Ast.Int 1));
        Ast.skip;
      ]
  in
  let program = Wellformed.infer_decls (Ast.program body) in
  let binding = Binding.make lattice ~default:lattice.Lattice.bottom [] in
  (program, binding)

(* The planted store-staleness (test hook): a padded all-low program
   whose store entry is pre-written with the {e opposite} CFM verdict
   before the campaign runs. Replay finds the stale verdict, the honest
   analyzers disagree with it, and the case classifies as [store-stale].
   Shrink candidates miss in the store, so the counterexample stays at
   the planted program — exactly the stored artifact that diverged. *)
let planted_store_case () =
  let body =
    Ast.seq
      [
        Ast.assign "p" (Ast.Int 3);
        Ast.skip;
        Ast.assign "y" (Ast.Int 1);
        Ast.assign "q" (Ast.Binop (Ast.Add, Ast.Var "p", Ast.Int 1));
        Ast.skip;
      ]
  in
  let program = Wellformed.infer_decls (Ast.program body) in
  let binding = Binding.make lattice ~default:lattice.Lattice.bottom [] in
  (program, binding)

(* The store replay key: the same content address the pipeline would use
   for a CFM-only job over this (program, binding) on the campaign
   lattice — so a fuzz store and a batch/serve store speak about the
   same artifacts. *)
let store_digest program binding =
  Job.digest
    (Job.make ~id:0 ~name:"fuzz" ~lattice ~binding ~analyses:[ Job.Cfm ]
       program)

let stored_cfm_entry verdict =
  [
    {
      Job.analysis = "cfm";
      verdict;
      checks = 0;
      duration_ns = 0L;
      artifact = None;
    };
  ]

let planted_cert_case () =
  let body =
    Ast.seq
      [
        Ast.assign "p" (Ast.Int 3);
        Ast.skip;
        Ast.assign "y" (Ast.Int 0);
        Ast.assign "q" (Ast.Binop (Ast.Add, Ast.Var "p", Ast.Int 1));
        Ast.skip;
      ]
  in
  let program = Wellformed.infer_decls (Ast.program body) in
  let binding = Binding.make lattice ~default:lattice.Lattice.bottom [] in
  (program, binding)

(* The planted prune-unsoundness (test hook): a padded all-low
   straight-line program with the oracle's dataflow leg forced to report
   a pruned arm at the span of a statement every execution steps. The
   exploration's visit witness refutes the fake claim, so the case
   classifies as prune-unsound and shrinks to a single statement. *)
let planted_prune_case () =
  let body =
    Ast.seq
      [
        Ast.assign "p" (Ast.Int 3);
        Ast.skip;
        Ast.assign "y" (Ast.Int 1);
        Ast.assign "q" (Ast.Binop (Ast.Add, Ast.Var "p", Ast.Int 1));
        Ast.skip;
      ]
  in
  let program = Wellformed.infer_decls (Ast.program body) in
  let binding = Binding.make lattice ~default:lattice.Lattice.bottom [] in
  (program, binding)

(* The planted witness corruption (test hook): a padded program whose
   middle statement leaks [x] (high) into [y] (low), so certification
   honestly rejects and a flow witness is emitted — with the oracle's
   dataflow leg forced to corrupt the witness's sink span before replay.
   The replay finds no failed check at the shifted span, so the case
   classifies as witness-bogus and shrinks to the single [y := x]. *)
let planted_witness_case () =
  let body =
    Ast.seq
      [
        Ast.assign "p" (Ast.Int 3);
        Ast.skip;
        Ast.assign "y" (Ast.Var "x");
        Ast.assign "q" (Ast.Binop (Ast.Add, Ast.Var "p", Ast.Int 1));
        Ast.skip;
      ]
  in
  let program = Wellformed.infer_decls (Ast.program body) in
  let binding =
    Binding.make lattice ~default:lattice.Lattice.bottom
      [ ("x", lattice.Lattice.top) ]
  in
  (program, binding)

(* One refinement case: generate (or plant) a module pair, take the
   compositional toolchain's claim, refute claimed-safe swaps with the
   executor. The verdict tuple is neutral everywhere but the refine
   fields, so the only inversion a refinement case can raise is
   [refine-unsound]. *)
let run_refine_case config ~planted rng index =
  let case, override_claim =
    if planted then (Modfuzz.planted lattice, Some true)
    else (Modfuzz.generate lattice rng, None)
  in
  let ni_seed = Prng.bits rng land 0x3FFFFFFF in
  let claimed, leak, tested, skipped =
    Modfuzz.evaluate ?override_claim ~lattice ~ni_seed
      ~ni_pairs:config.ni_pairs ~max_states:config.max_states case
  in
  let verdicts = Modfuzz.verdicts ~claimed ~leak ~tested ~skipped in
  let cls = Classify.classify verdicts in
  let inversion_labels =
    List.map Classify.inversion_label cls.Classify.inversions
  in
  {
    index;
    o_profile = (if planted then "planted-refine" else "refine");
    primary = Classify.primary verdicts cls;
    inversion_labels;
    gap_labels = List.map Classify.gap_label cls.Classify.gaps;
    verdicts;
    statements = Modfuzz.statements case;
    payload =
      (if inversion_labels = [] then None
       else Some (P_refine (case, override_claim, ni_seed)));
  }

let run_case ?store config index =
  let planted_cfm = config.plant_inversion && index = config.cases in
  let planted_cert =
    config.plant_cert_inversion
    && index = config.cases + if config.plant_inversion then 1 else 0
  in
  let planted_lint =
    config.plant_lint_unsound
    && index
       = config.cases
         + (if config.plant_inversion then 1 else 0)
         + if config.plant_cert_inversion then 1 else 0
  in
  let planted_chan =
    config.plant_chan_unsound
    && index
       = config.cases
         + (if config.plant_inversion then 1 else 0)
         + (if config.plant_cert_inversion then 1 else 0)
         + if config.plant_lint_unsound then 1 else 0
  in
  let planted_store =
    config.plant_store_stale
    && index
       = config.cases
         + (if config.plant_inversion then 1 else 0)
         + (if config.plant_cert_inversion then 1 else 0)
         + (if config.plant_lint_unsound then 1 else 0)
         + if config.plant_chan_unsound then 1 else 0
  in
  let dataflow_base =
    config.cases
    + (if config.plant_inversion then 1 else 0)
    + (if config.plant_cert_inversion then 1 else 0)
    + (if config.plant_lint_unsound then 1 else 0)
    + (if config.plant_chan_unsound then 1 else 0)
    + if config.plant_store_stale then 1 else 0
  in
  (* The dataflow plant occupies two indices: one forced bogus prune,
     one forced witness corruption. *)
  let planted_prune = config.plant_dataflow_unsound && index = dataflow_base in
  let planted_witness =
    config.plant_dataflow_unsound && index = dataflow_base + 1
  in
  let planted_refine =
    config.plant_refine_unsound
    && index = dataflow_base + if config.plant_dataflow_unsound then 2 else 0
  in
  (* Honest refinement cases occupy the tail of the index space, after
     every planted case. *)
  let refine_base =
    dataflow_base
    + (if config.plant_dataflow_unsound then 2 else 0)
    + if config.plant_refine_unsound then 1 else 0
  in
  let rng = case_rng config.seed index in
  if planted_refine || index >= refine_base then
    run_refine_case config ~planted:planted_refine rng index
  else
  let ( profile_name,
        program,
        binding,
        override_cfm,
        override_cert,
        override_lint,
        override_dataflow ) =
    if planted_cfm then
      let program, binding = planted_case () in
      ("planted", program, binding, Some true, None, None, None)
    else if planted_cert then
      let program, binding = planted_cert_case () in
      ("planted-cert", program, binding, None, Some false, None, None)
    else if planted_lint then
      let program, binding = planted_lint_case () in
      ("planted-lint", program, binding, None, None, Some true, None)
    else if planted_chan then
      let program, binding = planted_chan_case () in
      ("planted-chan", program, binding, None, None, Some true, None)
    else if planted_store then
      let program, binding = planted_store_case () in
      ("planted-store", program, binding, None, None, None, None)
    else if planted_prune then
      let program, binding = planted_prune_case () in
      ("planted-prune", program, binding, None, None, None, Some `Prune)
    else if planted_witness then
      let program, binding = planted_witness_case () in
      ("planted-witness", program, binding, None, None, None, Some `Witness)
    else begin
      let profile_name, cfg_gen =
        List.nth profiles (index mod List.length profiles)
      in
      let size = Prng.range rng config.size_min config.size_max in
      let program = generate_case rng profile_name cfg_gen ~size in
      (profile_name, program, random_binding rng program, None, None, None, None)
    end
  in
  let ni_seed = Prng.bits rng land 0x3FFFFFFF in
  (* Store replay: ask the persistent store for a prior CFM verdict on
     this exact (program, binding). Divergence from the fresh verdict is
     the store-stale inversion; a miss writes the honest verdict back so
     the next campaign over the same store replays it. Forced-CFM cases
     skip the store entirely — a planted lie must never poison it. *)
  let lookup p =
    match store with
    | None -> None
    | Some st -> (
      match Store.find st ~digest:(store_digest p binding) with
      | Some (r :: _) when String.equal r.Job.analysis "cfm" ->
        Some r.Job.verdict
      | Some _ | None -> None)
  in
  let replay = Option.is_some store && override_cfm = None in
  let stored_cfm = if replay then lookup program else None in
  let verdicts =
    Oracle.run ?override_cfm ?override_cert ?override_lint ?override_dataflow
      ?stored_cfm ~ni_seed ~ni_pairs:config.ni_pairs
      ~max_states:config.max_states binding program
  in
  (if replay && stored_cfm = None then
     match store with
     | Some st ->
       Store.add st
         ~digest:(store_digest program binding)
         (stored_cfm_entry verdicts.Classify.cfm)
     | None -> ());
  let cls = Classify.classify verdicts in
  let inversion_labels = List.map Classify.inversion_label cls.Classify.inversions in
  let gap_labels = List.map Classify.gap_label cls.Classify.gaps in
  {
    index;
    o_profile = profile_name;
    primary = Classify.primary verdicts cls;
    inversion_labels;
    gap_labels;
    verdicts;
    statements = (Metrics.of_program program).Metrics.statements;
    payload =
      (if inversion_labels = [] then None
       else
         Some
           (P_program
              ( program,
                binding,
                override_cfm,
                override_cert,
                override_lint,
                override_dataflow,
                (if replay then lookup else fun _ -> None),
                ni_seed )));
  }

(* ------------------------------------------------------------------ *)
(* Shrinking and persistence *)

let binding_digest_text binding =
  Binding.bindings binding
  |> List.map (fun (v, c) -> v ^ ":" ^ c)
  |> String.concat ","

let case_digest program binding =
  Digest.to_hex
    (Digest.string (Pretty.program_to_string program ^ "|" ^ binding_digest_text binding))

let shrink_counterexample config sink seen (o : outcome) =
  match o.payload with
  | None -> None
  | Some payload ->
    let label = List.hd o.inversion_labels in
    let matches_label v =
      List.exists
        (fun inv -> String.equal (Classify.inversion_label inv) label)
        (Classify.classify v).Classify.inversions
    in
    (* Minimize the payload down to (shrunk display program, binding,
       corpus writer, sizes) — the program path shrinks the program
       itself, the refinement path shrinks the module pair and displays
       and persists the swapped unit. *)
    let program, binding, shrunk, stats, write_corpus =
      match payload with
      | P_program
          ( program,
            binding,
            override_cfm,
            override_cert,
            override_lint,
            override_dataflow,
            lookup,
            ni_seed ) ->
        let keep p =
          Wellformed.is_valid p
          && matches_label
               (Oracle.run ?override_cfm ?override_cert ?override_lint
                  ?override_dataflow ?stored_cfm:(lookup p) ~ni_seed
                  ~ni_pairs:config.ni_pairs ~max_states:config.max_states
                  binding p)
        in
        let shrunk, stats =
          Shrink.minimize ~budget:config.shrink_budget ~keep program
        in
        ( program,
          binding,
          shrunk,
          stats,
          fun ~dir ~name ~expected ~note ->
            Corpus.write ~dir ~name ~lattice_name ~binding ~expected ~note
              shrunk )
      | P_refine (case, override_claim, ni_seed) ->
        let keep case =
          let claimed, leak, tested, skipped =
            Modfuzz.evaluate ?override_claim ~lattice ~ni_seed
              ~ni_pairs:config.ni_pairs ~max_states:config.max_states case
          in
          matches_label (Modfuzz.verdicts ~claimed ~leak ~tested ~skipped)
        in
        let small, stats =
          Modfuzz.shrink ~budget:config.shrink_budget ~keep case
        in
        let binding = Modfuzz.case_binding ~lattice small in
        ( Modfuzz.elaborated case,
          binding,
          Modfuzz.elaborated small,
          stats,
          fun ~dir ~name ~expected ~note ->
            Corpus.write_linked ~dir ~name ~lattice_name ~binding ~expected
              ~note (Modfuzz.swapped small) )
    in
    let digest = case_digest shrunk binding in
    let fresh = not (Hashtbl.mem seen digest) in
    Hashtbl.replace seen digest ();
    let corpus_path =
      match config.corpus_dir with
      | Some dir when fresh ->
        let honest = Corpus.replay_verdicts binding shrunk in
        let expected = Corpus.expected_of_verdicts ~cls:label shrunk honest in
        let name = Printf.sprintf "inv-%s-%s" label (String.sub digest 0 12) in
        let note =
          Printf.sprintf "campaign seed %d, case %d, profile %s" config.seed
            o.index o.o_profile
        in
        Some (write_corpus ~dir ~name ~expected ~note)
      | _ -> None
    in
    let original_statements = (Metrics.of_program program).Metrics.statements in
    let shrunk_statements = (Metrics.of_program shrunk).Metrics.statements in
    Telemetry.emit sink
      [
        ("event", Telemetry.String "shrink");
        ("case", Telemetry.Int o.index);
        ("label", Telemetry.String label);
        ("from_statements", Telemetry.Int original_statements);
        ("to_statements", Telemetry.Int shrunk_statements);
        ("steps", Telemetry.Int stats.Shrink.steps);
        ("evals", Telemetry.Int stats.Shrink.evals);
        ( "corpus",
          match corpus_path with
          | Some p -> Telemetry.String p
          | None -> Telemetry.Null );
      ];
    Some
      {
        case_index = o.index;
        profile = o.o_profile;
        label;
        program = shrunk;
        binding;
        original_statements;
        shrunk_statements;
        shrink = stats;
        digest;
        corpus_path;
      }

(* ------------------------------------------------------------------ *)
(* Reporting *)

let summary_json s =
  let open Telemetry in
  json_to_string
    (Obj
       [
         ("fuzz", String "summary");
         ("seed", Int s.seed);
         ("cases", Int s.cases);
         ("completed", Int s.completed);
         ("timed_out", Int s.timed_out);
         ("errors", Int s.errors);
         ("inversions", Int s.inversion_cases);
         ("gaps", Int s.gap_cases);
         ( "classes",
           Obj (List.map (fun (label, n) -> (label, Int n)) s.class_counts) );
         ( "oracle",
           Obj
             [
               ("pairs_tested", Int s.oracle_pairs_tested);
               ("pairs_skipped", Int s.oracle_pairs_skipped);
             ] );
         ( "shrink",
           Obj [ ("steps", Int s.shrink_steps); ("evals", Int s.shrink_evals) ]
         );
         ( "counterexamples",
           List
             (List.map
                (fun c ->
                  Obj
                    [
                      ("case", Int c.case_index);
                      ("label", String c.label);
                      ("statements", Int c.shrunk_statements);
                      ("digest", String c.digest);
                      ( "corpus",
                        match c.corpus_path with
                        | Some p -> String p
                        | None -> Null );
                    ])
                s.counterexamples) );
       ])

let pp_summary ppf s =
  Fmt.pf ppf "fuzz campaign: seed=%d cases=%d lattice=%s@." s.seed s.cases
    lattice_name;
  Fmt.pf ppf "  completed=%d timed-out=%d errors=%d@." s.completed s.timed_out
    s.errors;
  Fmt.pf ppf "  oracle pairs: tested=%d skipped=%d@." s.oracle_pairs_tested
    s.oracle_pairs_skipped;
  Fmt.pf ppf "  classes:@.";
  List.iter
    (fun (label, n) -> Fmt.pf ppf "    %-24s %d@." label n)
    s.class_counts;
  Fmt.pf ppf "  inversions=%d gaps=%d@." s.inversion_cases s.gap_cases;
  List.iter
    (fun c ->
      Fmt.pf ppf "  counterexample case=%d class=%s statements %d -> %d%s@."
        c.case_index c.label c.original_statements c.shrunk_statements
        (match c.corpus_path with
        | Some p -> " corpus=" ^ p
        | None -> "");
      Fmt.pf ppf "    %s@." (Pretty.stmt_to_string c.program.Ast.body))
    s.counterexamples

let exit_code s =
  if s.inversion_cases > 0 then 2 else if s.errors > 0 then 1 else 0

(* ------------------------------------------------------------------ *)
(* The campaign *)

let run ?(sink = Telemetry.null_sink ()) (config : config) =
  if config.cases < 0 then invalid_arg "Campaign.run: negative case count";
  if config.refine_cases < 0 then
    invalid_arg "Campaign.run: negative refine case count";
  if config.jobs < 1 then invalid_arg "Campaign.run: jobs < 1";
  if config.size_min < 1 || config.size_max < config.size_min then
    invalid_arg "Campaign.run: bad size range";
  let timer = Telemetry.start () in
  (* The replay store: explicit [store_dir], or — so the planted case is
     self-contained — a seed-derived scratch directory. *)
  let store =
    let dir =
      match config.store_dir with
      | Some _ as some -> some
      | None ->
        if config.plant_store_stale then
          Some
            (Filename.concat
               (Filename.get_temp_dir_name ())
               (Printf.sprintf "ifc-fuzz-store-%d" config.seed))
        else None
    in
    Option.map
      (fun dir ->
        match Store.open_ dir with
        | Ok st -> st
        | Error msg -> invalid_arg ("Campaign.run: store: " ^ msg))
      dir
  in
  (match store with
  | Some st when config.plant_store_stale ->
    (* Poison the store before anyone reads it: the planted program's
       entry carries the flipped verdict. *)
    let program, binding = planted_store_case () in
    let honest = Ifc_core.Cfm.certified binding program.Ast.body in
    Store.add st
      ~digest:(store_digest program binding)
      (stored_cfm_entry (not honest))
  | _ -> ());
  let total =
    config.cases
    + (if config.plant_inversion then 1 else 0)
    + (if config.plant_cert_inversion then 1 else 0)
    + (if config.plant_lint_unsound then 1 else 0)
    + (if config.plant_chan_unsound then 1 else 0)
    + (if config.plant_store_stale then 1 else 0)
    + (if config.plant_dataflow_unsound then 2 else 0)
    + (if config.plant_refine_unsound then 1 else 0)
    + config.refine_cases
  in
  let deadline =
    Option.map
      (fun seconds ->
        Int64.add (Telemetry.now_ns ()) (Int64.of_float (seconds *. 1e9)))
      config.time_budget
  in
  let slots = Array.make total None in
  let errors = Atomic.make 0 in
  let task index () =
    let past_deadline =
      match deadline with
      | Some d -> Telemetry.now_ns () > d
      | None -> false
    in
    if past_deadline then slots.(index) <- Some Timed_out
    else begin
      let o = run_case ?store config index in
      slots.(index) <- Some (Done o);
      Telemetry.emit sink
        [
          ("event", Telemetry.String "case");
          ("case", Telemetry.Int index);
          ("profile", Telemetry.String o.o_profile);
          ("class", Telemetry.String o.primary);
          ("statements", Telemetry.Int o.statements);
          ("ni_tested", Telemetry.Int o.verdicts.Classify.ni_tested);
          ("ni_skipped", Telemetry.Int o.verdicts.Classify.ni_skipped);
        ]
    end
  in
  let on_error ~worker exn =
    Atomic.incr errors;
    Telemetry.emit sink
      [
        ("event", Telemetry.String "error");
        ("worker", Telemetry.Int worker);
        ("exn", Telemetry.String (Printexc.to_string exn));
      ]
  in
  Pool.run ~on_error ~workers:config.jobs (List.init total task);
  (* Aggregation and shrinking run on this domain, in case-index order:
     the report never depends on completion order. *)
  let counts = Hashtbl.create 16 in
  let bump label = Hashtbl.replace counts label (1 + Option.value ~default:0 (Hashtbl.find_opt counts label)) in
  let completed = ref 0 in
  let timed_out = ref 0 in
  let inversion_cases = ref 0 in
  let gap_cases = ref 0 in
  let pairs_tested = ref 0 in
  let pairs_skipped = ref 0 in
  let outcomes = ref [] in
  Array.iter
    (function
      | None -> incr timed_out
      | Some Timed_out -> incr timed_out
      | Some (Done o) ->
        incr completed;
        bump o.primary;
        if o.inversion_labels <> [] then incr inversion_cases;
        if o.gap_labels <> [] then incr gap_cases;
        pairs_tested := !pairs_tested + o.verdicts.Classify.ni_tested;
        pairs_skipped := !pairs_skipped + o.verdicts.Classify.ni_skipped;
        outcomes := o :: !outcomes)
    slots;
  let seen = Hashtbl.create 8 in
  let counterexamples =
    List.rev !outcomes
    |> List.filter_map (shrink_counterexample config sink seen)
  in
  let shrink_steps =
    List.fold_left (fun acc c -> acc + c.shrink.Shrink.steps) 0 counterexamples
  in
  let shrink_evals =
    List.fold_left (fun acc c -> acc + c.shrink.Shrink.evals) 0 counterexamples
  in
  let summary =
    {
      seed = config.seed;
      cases = total;
      completed = !completed;
      timed_out = !timed_out;
      errors = Atomic.get errors;
      class_counts =
        List.map
          (fun label ->
            (label, Option.value ~default:0 (Hashtbl.find_opt counts label)))
          Classify.class_labels;
      inversion_cases = !inversion_cases;
      gap_cases = !gap_cases;
      oracle_pairs_tested = !pairs_tested;
      oracle_pairs_skipped = !pairs_skipped;
      shrink_steps;
      shrink_evals;
      counterexamples;
      elapsed_ns = Telemetry.elapsed_ns timer;
    }
  in
  Telemetry.emit sink
    [
      ("event", Telemetry.String "summary");
      ("json", Telemetry.String (summary_json summary));
    ];
  summary
