(** The persisted regression corpus of fuzzing counterexamples.

    Each corpus entry is a pair of files in one directory:

    - [<name>.ifc] — the (usually shrunk) program in concrete syntax;
    - [<name>.expect] — a line-oriented sidecar of [key: value] pairs
      recording the lattice, the binding (repeated [binding:] lines in
      {!Ifc_core.Binding.of_spec} syntax), the classification label, and
      the expected verdict of every analyzer plus the semantic oracle.

    Sidecars record {e honest} analyzer verdicts recomputed on the final
    program with the canonical replay parameters below — so replaying an
    entry against a healthy toolchain validates, and any analyzer
    regression (including one originally simulated by a fault-injection
    hook) shows up as a verdict drift. The test suite replays the whole
    directory forever; campaigns append new shrunk counterexamples. *)

type expected = {
  cls : string;  (** A {!Classify.class_labels} label. *)
  cfm : bool;
  denning : bool;
  fs : bool;
  prove : bool;
  cert : bool;
      (** The certificate round-trip verdict ({!Classify.verdicts}
          [cert_ok]): [true] when the entry is not provable (vacuous) or
          when its emitted certificate passes the independent checker. *)
  interfering : bool;  (** Oracle found violations at replay parameters. *)
  race_free : bool;  (** Concurrency analyzer's race-freedom claim. *)
  deadlock_free : bool;  (** Claim: no execution can block, even transiently. *)
  must_block : bool;  (** Claim: no execution terminates. *)
  chan_race_free : bool;
      (** Claim: no same-endpoint channel contention. Optional in the
          sidecar (defaults to [true]: pre-channel entries have none). *)
  chan_deadlock_free : bool;
      (** Claim: no execution can block on a channel, even transiently.
          Optional in the sidecar (defaults to [true]). *)
  lint_findings : int;  (** Total findings the analyzer reported. *)
  pruned : int;
      (** Arms the dataflow analysis pruned as statically unreachable
          (absent in older sidecars: 0). *)
  witness_ok : bool;
      (** The flow witness, when one was emitted, survived replay
          (absent in older sidecars, and vacuously true when the entry
          is accepted). *)
  statements : int;  (** Statement count of the stored program. *)
}

type entry = {
  name : string;  (** File stem, unique within the directory. *)
  lattice_name : string;  (** ["two"], ["three"], ["four"] or ["mls"]. *)
  binding : string Ifc_core.Binding.t;
  program : Ifc_lang.Ast.program;
      (** For a linked-syntax entry (detected by
          {!Ifc_lang.Parser.looks_linked}), the whole-program elaboration
          of the unit — the module system's certification reference. *)
  expected : expected;
  note : string option;
}

val lattice_of_name :
  string -> (string Ifc_lattice.Lattice.t, string) result
(** Resolve a sidecar's [lattice:] field to a built-in scheme. *)

val replay_verdicts :
  string Ifc_core.Binding.t -> Ifc_lang.Ast.program -> Classify.verdicts
(** The analyzer matrix at the corpus's canonical replay parameters
    (fixed oracle seed, pair count and state budget) — the same call both
    when writing a sidecar and when replaying it, so verdicts are stable
    by construction. *)

val expected_of_verdicts :
  cls:string -> Ifc_lang.Ast.program -> Classify.verdicts -> expected

val load : string -> (entry list, string) result
(** [load dir] reads every [*.ifc]/[*.expect] pair, sorted by name. A
    missing sidecar, unreadable program or malformed field is an [Error].
    A missing directory is an empty corpus. *)

val write :
  dir:string ->
  name:string ->
  lattice_name:string ->
  binding:string Ifc_core.Binding.t ->
  expected:expected ->
  ?note:string ->
  Ifc_lang.Ast.program ->
  string
(** Persist one entry (creating [dir] if needed) and return the path of
    the program file. Overwrites an existing entry of the same name. *)

val write_linked :
  dir:string ->
  name:string ->
  lattice_name:string ->
  binding:string Ifc_core.Binding.t ->
  expected:expected ->
  ?note:string ->
  Ifc_lang.Ast.linked ->
  string
(** Like {!write}, but the entry is a linked unit persisted in concrete
    linked syntax — refinement counterexamples keep their module
    structure on disk. [expected] and [binding] describe the unit's
    elaboration, which is what {!load} replays. *)
