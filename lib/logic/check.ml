(* Validation of flow-proof derivations against the rules of Figure 1. *)

module Lattice = Ifc_lattice.Lattice
module Ast = Ifc_lang.Ast

type error = { span : Ifc_lang.Loc.span; rule : string; reason : string }

let pp_error ppf e = Fmt.pf ppf "%a: [%s] %s" Ifc_lang.Loc.pp e.span e.rule e.reason

type entailer = [ `Syntactic | `Complete ]

(* The substitution of the assignment-like axioms: the written symbol
   receives the written class joined with both certification variables. *)
let write_subst name rhs_of_name =
  fun sym ->
    match sym with
    | Cexpr.S_cls v when String.equal v name -> Some rhs_of_name
    | Cexpr.S_cls _ | Cexpr.S_local | Cexpr.S_global -> None

let entails entailer (l : 'a Lattice.t) hyps goals =
  match entailer with
  | `Syntactic -> Entail.check l hyps goals
  | `Complete -> (
    match Entail.decide l hyps goals with
    | Ok b -> b
    | Error _ ->
      (* Too many valuations: fall back to the sound checker. *)
      Entail.check l hyps goals)

let check ?(entailer = `Syntactic) ?(interference = `Check) (l : 'a Lattice.t) proof =
  let errors = ref [] in
  let err span rule reason = errors := { span; rule; reason } :: !errors in
  let entail = entails entailer l in
  let expect_equal span rule what p q =
    if not (Assertion.equal l p q) then
      err span rule
        (Fmt.str "%s:@ %a@ is not@ %a" what (Assertion.pp l) p (Assertion.pp l) q)
  in
  let expect_entails span rule what hyps goals =
    if not (entail hyps goals) then
      err span rule
        (Fmt.str "%s:@ %a |- %a fails" what (Assertion.pp l) hyps (Assertion.pp l) goals)
  in
  let triple span rule assertion =
    match Assertion.triple_of l assertion with
    | Some t -> Some t
    | None ->
      err span rule
        (Fmt.str "assertion not in {V,L,G} form: %a" (Assertion.pp l) assertion);
      None
  in
  (* Interference freedom for the concurrency rule: every assertion of
     proof [i] must be preserved by every write action of a sibling proof.
     The acting process's own certification variables are approximated by
     the bounds in the action's precondition — the paper's "indirect flows
     in one process do not affect indirect flows in another". *)
  let actions p =
    List.concat_map
      (fun (n : 'a Proof.t) ->
        match (n.rule, n.stmt.Ast.node) with
        | Proof.Axiom_assign, Ast.Assign (x, e) ->
          [ (n, x, Cexpr.of_expr l e) ]
        | Proof.Axiom_assign, Ast.Declassify (x, _, cls) ->
          let named =
            match l.Lattice.of_string cls with Ok c -> c | Error _ -> l.Lattice.top
          in
          [ (n, x, Cexpr.Const named) ]
        | Proof.Axiom_assign, Ast.Store (a, i, e) ->
          [ (n, a, Cexpr.Join (Cexpr.Cls a, Cexpr.Join (Cexpr.of_expr l i, Cexpr.of_expr l e))) ]
        | Proof.Axiom_wait, Ast.Wait sem | Proof.Axiom_signal, Ast.Signal sem ->
          [ (n, sem, Cexpr.Cls sem) ]
        | Proof.Axiom_send, Ast.Send (chan, e) ->
          (* A send writes the channel: old contents persist (weak
             update) and the payload joins in. *)
          [ (n, chan, Cexpr.Join (Cexpr.Cls chan, Cexpr.of_expr l e)) ]
        | Proof.Axiom_recv, Ast.Recv (chan, x) ->
          (* A recv writes both the target (the delivered message, whose
             class the channel bounds) and the channel. *)
          [ (n, x, Cexpr.Cls chan); (n, chan, Cexpr.Cls chan) ]
        | _ -> [])
      (Proof.nodes p)
  in
  let interference_free span proofs =
    List.iteri
      (fun i pi ->
        List.iteri
          (fun j pj ->
            if i <> j then
              List.iter
                (fun (action, name, written_class) ->
                  let bounds =
                    match Assertion.triple_of l action.Proof.pre with
                    | Some { Assertion.l = lb; g = gb; _ } -> Cexpr.Join (lb, gb)
                    | None -> Cexpr.Join (Cexpr.Local, Cexpr.Global)
                  in
                  let sigma = write_subst name (Cexpr.Join (written_class, bounds)) in
                  List.iter
                    (fun r ->
                      let r' = Assertion.subst sigma r in
                      if not (entail (r @ action.Proof.pre) r') then
                        err span "concurrency"
                          (Fmt.str
                             "interference: %a not preserved by %s under %a"
                             (Assertion.pp l) r
                             (Ifc_lang.Pretty.stmt_to_string action.Proof.stmt)
                             (Assertion.pp l) action.Proof.pre))
                    (Proof.assertions pi))
                (actions pj))
          proofs)
      proofs
  in
  let rec go (p : 'a Proof.t) =
    let span = p.stmt.Ast.span in
    match (p.rule, p.stmt.Ast.node) with
    | Proof.Axiom_skip, Ast.Skip ->
      expect_equal span "skip" "pre must equal post" p.pre p.post
    | Proof.Axiom_assign, Ast.Assign (x, e) ->
      let rhs = Cexpr.Join (Cexpr.of_expr l e, Cexpr.Join (Cexpr.Local, Cexpr.Global)) in
      expect_equal span "assign" "pre must be post[x <- e(+)local(+)global]" p.pre
        (Assertion.subst (write_subst x rhs) p.post)
    | Proof.Axiom_assign, Ast.Declassify (x, _, cls) ->
      (* Declassification axiom: the named class replaces the expression's
         class in the substitution. *)
      let named =
        match l.Lattice.of_string cls with Ok c -> c | Error _ -> l.Lattice.top
      in
      let rhs = Cexpr.Join (Cexpr.Const named, Cexpr.Join (Cexpr.Local, Cexpr.Global)) in
      expect_equal span "declassify" "pre must be post[x <- C(+)local(+)global]" p.pre
        (Assertion.subst (write_subst x rhs) p.post)
    | Proof.Axiom_assign, Ast.Store (a, i, e) ->
      (* Array write: a weak update — the array's class persists in the
         substitution alongside the index and value classes. *)
      let rhs =
        Cexpr.Join
          ( Cexpr.Cls a,
            Cexpr.Join
              ( Cexpr.Join (Cexpr.of_expr l i, Cexpr.of_expr l e),
                Cexpr.Join (Cexpr.Local, Cexpr.Global) ) )
      in
      expect_equal span "store" "pre must be post[a <- a(+)i(+)e(+)local(+)global]"
        p.pre
        (Assertion.subst (write_subst a rhs) p.post)
    | Proof.Axiom_signal, Ast.Signal sem ->
      let rhs = Cexpr.Join (Cexpr.Cls sem, Cexpr.Join (Cexpr.Local, Cexpr.Global)) in
      expect_equal span "signal" "pre must be post[sem <- sem(+)local(+)global]" p.pre
        (Assertion.subst (write_subst sem rhs) p.post)
    | Proof.Axiom_wait, Ast.Wait sem ->
      let rhs = Cexpr.Join (Cexpr.Cls sem, Cexpr.Join (Cexpr.Local, Cexpr.Global)) in
      let sigma sym =
        match sym with
        | Cexpr.S_cls v when String.equal v sem -> Some rhs
        | Cexpr.S_global -> Some rhs
        | Cexpr.S_cls _ | Cexpr.S_local -> None
      in
      expect_equal span "wait"
        "pre must be post[sem <- sem(+)local(+)global, global <- sem(+)local(+)global]"
        p.pre
        (Assertion.subst sigma p.post)
    | Proof.Axiom_send, Ast.Send (chan, e) ->
      (* Signal-shaped: only the channel's symbol is substituted — a send
         never blocks the sender conditionally on data, so [global] is
         untouched. The payload joins the channel's class (weak update,
         like a store: earlier messages persist). *)
      let rhs =
        Cexpr.Join
          ( Cexpr.Cls chan,
            Cexpr.Join (Cexpr.of_expr l e, Cexpr.Join (Cexpr.Local, Cexpr.Global)) )
      in
      expect_equal span "send" "pre must be post[c <- c(+)e(+)local(+)global]" p.pre
        (Assertion.subst (write_subst chan rhs) p.post)
    | Proof.Axiom_recv, Ast.Recv (chan, x) ->
      (* Wait-shaped plus a write: the conditional delay raises [global]
         by the channel's class, and the delivered message (bounded by
         the channel's class) lands in [x] and refreshes [c]. *)
      let rhs = Cexpr.Join (Cexpr.Cls chan, Cexpr.Join (Cexpr.Local, Cexpr.Global)) in
      let sigma sym =
        match sym with
        | Cexpr.S_cls v when String.equal v chan || String.equal v x -> Some rhs
        | Cexpr.S_global -> Some rhs
        | Cexpr.S_cls _ | Cexpr.S_local -> None
      in
      expect_equal span "recv"
        "pre must be post[x <- c(+)local(+)global, c <- c(+)local(+)global, \
         global <- c(+)local(+)global]"
        p.pre
        (Assertion.subst sigma p.post)
    | Proof.Consequence inner, _ ->
      if not (Ast.equal_stmt inner.Proof.stmt p.stmt) then
        err span "consequence" "inner statement differs";
      expect_entails span "consequence" "pre |- inner pre" p.pre inner.Proof.pre;
      expect_entails span "consequence" "inner post |- post" inner.Proof.post p.post;
      go inner
    | Proof.Composition proofs, Ast.Seq stmts ->
      if List.length proofs <> List.length stmts then
        err span "composition" "arity mismatch with begin..end"
      else begin
        List.iter2
          (fun (pr : 'a Proof.t) st ->
            if not (Ast.equal_stmt pr.Proof.stmt st) then
              err span "composition" "component statement mismatch")
          proofs stmts;
        match proofs with
        | [] -> err span "composition" "empty composition"
        | first :: _ ->
          expect_equal span "composition" "pre = first component's pre" p.pre
            first.Proof.pre;
          let last = List.nth proofs (List.length proofs - 1) in
          expect_equal span "composition" "post = last component's post" p.post
            last.Proof.post;
          let rec chain = function
            | a :: (b :: _ as rest) ->
              expect_equal span "composition" "adjacent post/pre must agree"
                a.Proof.post b.Proof.pre;
              chain rest
            | [ _ ] | [] -> ()
          in
          chain proofs
      end;
      List.iter go proofs
    | Proof.Alternation (p1, p2), Ast.If (cond, s1, s2) ->
      if not (Ast.equal_stmt p1.Proof.stmt s1 && Ast.equal_stmt p2.Proof.stmt s2) then
        err span "alternation" "branch statements mismatch";
      (match
         ( triple span "alternation" p.pre,
           triple span "alternation" p.post,
           triple span "alternation" p1.Proof.pre,
           triple span "alternation" p1.Proof.post )
       with
      | Some pre_t, Some post_t, Some b_pre, Some b_post ->
        (* Premises must agree with each other exactly. *)
        expect_equal span "alternation" "branch pres must agree" p1.Proof.pre
          p2.Proof.pre;
        expect_equal span "alternation" "branch posts must agree" p1.Proof.post
          p2.Proof.post;
        (* {V,L',G} Si {V',L',G'} vs conclusion {V,L,G} .. {V',L,G'}. *)
        expect_equal span "alternation" "V preserved into branches" pre_t.Assertion.v
          b_pre.Assertion.v;
        expect_equal span "alternation" "V' propagated from branches"
          post_t.Assertion.v b_post.Assertion.v;
        if not (Cexpr.equal l pre_t.Assertion.g b_pre.Assertion.g) then
          err span "alternation" "branch pre G must equal conclusion pre G";
        if not (Cexpr.equal l post_t.Assertion.g b_post.Assertion.g) then
          err span "alternation" "branch post G' must equal conclusion post G'";
        if not (Cexpr.equal l b_pre.Assertion.l b_post.Assertion.l) then
          err span "alternation" "branch L' must be invariant across the branch";
        if not (Cexpr.equal l pre_t.Assertion.l post_t.Assertion.l) then
          err span "alternation" "conclusion L must be preserved";
        (* Side condition: V,L,G |- L'[local <- local (+) e]. *)
        let goal =
          [ Assertion.atom
              (Cexpr.Join (Cexpr.Local, Cexpr.of_expr l cond))
              b_pre.Assertion.l ]
        in
        expect_entails span "alternation" "side condition local(+)e <= L'" p.pre goal
      | _ -> ());
      go p1;
      go p2
    | Proof.Iteration body, Ast.While (cond, body_stmt) ->
      if not (Ast.equal_stmt body.Proof.stmt body_stmt) then
        err span "iteration" "body statement mismatch";
      (match
         ( triple span "iteration" p.pre,
           triple span "iteration" p.post,
           triple span "iteration" body.Proof.pre )
       with
      | Some pre_t, Some post_t, Some b_pre ->
        (* Premise is an invariant: {V,L',G} S {V,L',G}. *)
        expect_equal span "iteration" "body invariant (pre = post)" body.Proof.pre
          body.Proof.post;
        expect_equal span "iteration" "V preserved into body" pre_t.Assertion.v
          b_pre.Assertion.v;
        expect_equal span "iteration" "conclusion preserves V"
          pre_t.Assertion.v post_t.Assertion.v;
        if not (Cexpr.equal l pre_t.Assertion.g b_pre.Assertion.g) then
          err span "iteration" "body G must equal conclusion pre G";
        if not (Cexpr.equal l pre_t.Assertion.l post_t.Assertion.l) then
          err span "iteration" "conclusion L must be preserved";
        let e_class = Cexpr.of_expr l cond in
        expect_entails span "iteration" "side condition local(+)e <= L'" p.pre
          [ Assertion.atom (Cexpr.Join (Cexpr.Local, e_class)) b_pre.Assertion.l ];
        expect_entails span "iteration" "side condition global(+)local(+)e <= G'" p.pre
          [ Assertion.atom
              (Cexpr.Join (Cexpr.Global, Cexpr.Join (Cexpr.Local, e_class)))
              post_t.Assertion.g ]
      | _ -> ());
      go body
    | Proof.Concurrency proofs, Ast.Cobegin branches ->
      if List.length proofs <> List.length branches then
        err span "concurrency" "arity mismatch with cobegin..coend"
      else
        List.iter2
          (fun (pr : 'a Proof.t) st ->
            if not (Ast.equal_stmt pr.Proof.stmt st) then
              err span "concurrency" "branch statement mismatch")
          proofs branches;
      (match (triple span "concurrency" p.pre, triple span "concurrency" p.post) with
      | Some pre_t, Some post_t ->
        let branch_triples =
          List.filter_map
            (fun (pr : 'a Proof.t) ->
              match
                ( Assertion.triple_of l pr.Proof.pre,
                  Assertion.triple_of l pr.Proof.post )
              with
              | Some a, Some b -> Some (a, b)
              | _ ->
                err span "concurrency" "branch assertion not in {V,L,G} form";
                None)
            proofs
        in
        if List.length branch_triples = List.length proofs then begin
          List.iter
            (fun ((bp : 'a Assertion.triple), (bq : 'a Assertion.triple)) ->
              if not (Cexpr.equal l bp.Assertion.l pre_t.Assertion.l) then
                err span "concurrency" "branch pre L differs from conclusion L";
              if not (Cexpr.equal l bq.Assertion.l pre_t.Assertion.l) then
                err span "concurrency" "branch post L differs from conclusion L";
              if not (Cexpr.equal l bp.Assertion.g pre_t.Assertion.g) then
                err span "concurrency" "branch pre G differs from conclusion G";
              if not (Cexpr.equal l bq.Assertion.g post_t.Assertion.g) then
                err span "concurrency" "branch post G' differs from conclusion G'")
            branch_triples;
          (* Conclusion V is the conjunction of the branch Vs. *)
          expect_equal span "concurrency" "pre V = conjunction of branch Vs"
            pre_t.Assertion.v
            (List.concat_map (fun (bp, _) -> bp.Assertion.v) branch_triples);
          expect_equal span "concurrency" "post V = conjunction of branch V's"
            post_t.Assertion.v
            (List.concat_map (fun (_, bq) -> bq.Assertion.v) branch_triples);
          if not (Cexpr.equal l pre_t.Assertion.l post_t.Assertion.l) then
            err span "concurrency" "conclusion L must be preserved"
        end
      | _ -> ());
      if interference = `Check then interference_free span proofs;
      List.iter go proofs
    | ( ( Proof.Axiom_assign | Proof.Axiom_wait | Proof.Axiom_signal
        | Proof.Axiom_send | Proof.Axiom_recv | Proof.Axiom_skip
        | Proof.Alternation _ | Proof.Iteration _ | Proof.Composition _
        | Proof.Concurrency _ ),
        _ ) ->
      err span "structure" "rule does not match the statement form"
  in
  go proof;
  match List.rev !errors with [] -> Ok () | es -> Error es

let valid ?entailer l p = Result.is_ok (check ?entailer ~interference:`Check l p)
