(** Flow-proof derivations (paper §3, Figure 1).

    A derivation is a tree of rule applications; every node carries its
    full pre- and post-assertion so an independent checker ({!Check}) can
    validate each application locally. [Axiom_skip] extends the logic with
    [{P} skip {P}] to match the language extension (see DESIGN.md §3). *)

type 'a t = {
  pre : 'a Assertion.t;
  stmt : Ifc_lang.Ast.stmt;
  post : 'a Assertion.t;
  rule : 'a rule;
}

and 'a rule =
  | Axiom_assign
  | Axiom_wait
  | Axiom_signal
  | Axiom_send
      (** [send(c, e)]: signal-shaped — the channel absorbs the payload,
          [c <- c (+) e (+) local (+) global]; no global update. *)
  | Axiom_recv
      (** [recv(c, x)]: wait-shaped plus a write — [x], [c] and [global]
          all receive [c (+) local (+) global]. *)
  | Axiom_skip
  | Alternation of 'a t * 'a t
  | Iteration of 'a t
  | Composition of 'a t list
  | Concurrency of 'a t list
  | Consequence of 'a t

val make :
  pre:'a Assertion.t -> stmt:Ifc_lang.Ast.stmt -> post:'a Assertion.t -> 'a rule -> 'a t

val size : 'a t -> int
(** Number of rule applications in the derivation. *)

val children : 'a t -> 'a t list
(** Immediate sub-derivations. *)

val nodes : 'a t -> 'a t list
(** Every node of the tree, preorder. *)

val assertions : 'a t -> 'a Assertion.t list
(** Every pre and post appearing in the derivation. *)

val completely_invariant :
  'a Ifc_lattice.Lattice.t -> invariant:'a Assertion.t -> 'a t -> bool
(** Definition 7: every node's precondition (and the root's pre and post)
    has [{V, L, G}] form with [V] equal to [invariant]. *)

val pp : 'a Ifc_lattice.Lattice.t -> Format.formatter -> 'a t -> unit
(** Renders the derivation as an indented outline, one judgment per rule
    application. *)
