(* Flow-proof derivations. *)

module Lattice = Ifc_lattice.Lattice

type 'a t = {
  pre : 'a Assertion.t;
  stmt : Ifc_lang.Ast.stmt;
  post : 'a Assertion.t;
  rule : 'a rule;
}

and 'a rule =
  | Axiom_assign
  | Axiom_wait
  | Axiom_signal
  | Axiom_send
  | Axiom_recv
  | Axiom_skip
  | Alternation of 'a t * 'a t
  | Iteration of 'a t
  | Composition of 'a t list
  | Concurrency of 'a t list
  | Consequence of 'a t

let make ~pre ~stmt ~post rule = { pre; stmt; post; rule }

let children p =
  match p.rule with
  | Axiom_assign | Axiom_wait | Axiom_signal | Axiom_send | Axiom_recv
  | Axiom_skip ->
    []
  | Alternation (a, b) -> [ a; b ]
  | Iteration a | Consequence a -> [ a ]
  | Composition ps | Concurrency ps -> ps

let rec size p = 1 + List.fold_left (fun acc c -> acc + size c) 0 (children p)

let rec nodes p = p :: List.concat_map nodes (children p)

let assertions p = List.concat_map (fun n -> [ n.pre; n.post ]) (nodes p)

let completely_invariant (l : 'a Lattice.t) ~invariant p =
  let v_is_invariant assertion =
    match Assertion.triple_of l assertion with
    | None -> false
    | Some { Assertion.v; _ } -> Assertion.equal l v invariant
  in
  (* Definition 7 constrains the precondition of every *statement
     occurrence*; that is the outermost judgment for the occurrence, so a
     consequence step's inner node (same statement, adjusted assertion) is
     not itself an occurrence. *)
  let rec skip_consequences n =
    match n.rule with Consequence inner -> skip_consequences inner | _ -> n
  in
  let rec occurrence_ok n =
    v_is_invariant n.pre
    && List.for_all occurrence_ok (children (skip_consequences n))
  in
  occurrence_ok p && v_is_invariant p.post

let rule_label = function
  | Axiom_assign -> "assign"
  | Axiom_wait -> "wait"
  | Axiom_signal -> "signal"
  | Axiom_send -> "send"
  | Axiom_recv -> "recv"
  | Axiom_skip -> "skip"
  | Alternation _ -> "alternation"
  | Iteration _ -> "iteration"
  | Composition _ -> "composition"
  | Concurrency _ -> "concurrency"
  | Consequence _ -> "consequence"

let rec pp (l : 'a Lattice.t) ppf p =
  Fmt.pf ppf "@[<v 2>[%s] {%a}@ %s@ {%a}%a@]" (rule_label p.rule) (Assertion.pp l) p.pre
    (String.concat " "
       (String.split_on_char '\n' (Ifc_lang.Pretty.stmt_to_string p.stmt)))
    (Assertion.pp l) p.post
    (fun ppf children ->
      List.iter (fun c -> Fmt.pf ppf "@ %a" (pp l) c) children)
    (children p)
