(** The small trusted core: independent validation of proof certificates.

    [check] walks a parsed certificate against the parsed program and
    accepts iff

    - the certificate's program digest matches the program,
    - the recorded binding covers exactly the variables of the program
      body,
    - every node is a correct instance of a Figure 1 rule for the
      statement at its position (with every entailment side-condition
      discharged under the certificate's own lattice),
    - concurrency nodes are interference-free, and
    - the derivation is completely invariant (Definition 7) for the policy
      assertion (Definition 6) of the recorded binding, with constant
      [local]/[global] bounds at the root.

    The checker re-derives nothing: it never constructs a proof, and the
    library does not link against the generator ([ifc_logic_gen]) — the
    dune dependency graph enforces that. Failures carry the preorder path
    of the offending node ([0], [0.2.1], ...), or the pseudo-paths
    [program] / [binding] for header-level mismatches. *)

type failure = { path : string; rule : string; reason : string }

val pp_failure : Format.formatter -> failure -> unit

val check :
  Cert.t -> Ifc_lang.Ast.program -> (unit, failure list) result
(** [check cert program] validates [cert] against [program]. [Error]
    carries every detected failure in walk order; the head names the first
    bad node. *)
