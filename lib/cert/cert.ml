(* Canonical serialization of flow-proof derivations, with a strict
   parser. See cert.mli for the format contract. *)

module Lattice = Ifc_lattice.Lattice
module Spec = Ifc_lattice.Spec
module Ast = Ifc_lang.Ast
module Pretty = Ifc_lang.Pretty
module Vars = Ifc_lang.Vars
module Binding = Ifc_core.Binding
module Assertion = Ifc_logic.Assertion
module Cexpr = Ifc_logic.Cexpr
module Proof = Ifc_logic.Proof

type kind =
  | K_assign
  | K_wait
  | K_signal
  | K_send
  | K_recv
  | K_skip
  | K_alternation
  | K_iteration
  | K_composition
  | K_concurrency
  | K_consequence

type node = {
  kind : kind;
  pre : string Assertion.t;
  post : string Assertion.t;
  children : node list;
}

type t = {
  program_digest : string;
  lattice : string Lattice.t;
  binds : (string * string) list;
  root : node;
}

type parse_error = { line : int; reason : string }

let version = 1

let pp_parse_error ppf e = Fmt.pf ppf "line %d: %s" e.line e.reason

let rule_name = function
  | K_assign -> "assign"
  | K_wait -> "wait"
  | K_signal -> "signal"
  | K_send -> "send"
  | K_recv -> "recv"
  | K_skip -> "skip"
  | K_alternation -> "alternation"
  | K_iteration -> "iteration"
  | K_composition -> "composition"
  | K_concurrency -> "concurrency"
  | K_consequence -> "consequence"

let kind_of_name = function
  | "assign" -> Some K_assign
  | "wait" -> Some K_wait
  | "signal" -> Some K_signal
  | "send" -> Some K_send
  | "recv" -> Some K_recv
  | "skip" -> Some K_skip
  | "alternation" -> Some K_alternation
  | "iteration" -> Some K_iteration
  | "composition" -> Some K_composition
  | "concurrency" -> Some K_concurrency
  | "consequence" -> Some K_consequence
  | _ -> None

let program_digest p =
  Digest.to_hex (Digest.string (Pretty.program_to_string p))

let rec count_nodes n = 1 + List.fold_left (fun a c -> a + count_nodes c) 0 n.children

let node_count c = count_nodes c.root

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render_sym = function
  | Cexpr.S_cls v -> "cls(" ^ v ^ ")"
  | Cexpr.S_local -> "local"
  | Cexpr.S_global -> "global"

(* Canonical: the normal form's sorted symbol atoms, then the constant
   (omitted when it is the bottom and at least one atom remains). *)
let render_cexpr (lat : string Lattice.t) e =
  let n = Cexpr.normalize lat e in
  let atoms = List.map render_sym n.Cexpr.atoms in
  let const = "const(" ^ lat.Lattice.to_string n.Cexpr.const ^ ")" in
  let parts =
    if atoms = [] then [ const ]
    else if lat.Lattice.equal n.Cexpr.const lat.Lattice.bottom then atoms
    else atoms @ [ const ]
  in
  String.concat " + " parts

let render_assertion lat (a : string Assertion.t) =
  let atoms =
    List.map
      (fun { Assertion.lhs; rhs } ->
        render_cexpr lat lhs ^ " <= " ^ render_cexpr lat rhs)
      a
    |> List.sort_uniq String.compare
  in
  "{" ^ String.concat "; " atoms ^ "}"

let spec_lines lat =
  String.split_on_char '\n' (Spec.to_text lat)
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")

let to_string (c : t) =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "ifc-cert %d" version;
  line "program: %s" c.program_digest;
  List.iter (fun l -> line "lattice: %s" l) (spec_lines c.lattice);
  List.iter (fun (v, cls) -> line "bind: %s = %s" v cls) c.binds;
  line "nodes: %d" (node_count c);
  let rec emit path n =
    line "node %s: %s" path (rule_name n.kind);
    line "  pre: %s" (render_assertion c.lattice n.pre);
    line "  post: %s" (render_assertion c.lattice n.post);
    List.iteri
      (fun i child -> emit (path ^ "." ^ string_of_int i) child)
      n.children
  in
  emit "0" c.root;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Emission from a checked derivation *)

let kind_of_rule = function
  | Proof.Axiom_assign -> K_assign
  | Proof.Axiom_wait -> K_wait
  | Proof.Axiom_signal -> K_signal
  | Proof.Axiom_send -> K_send
  | Proof.Axiom_recv -> K_recv
  | Proof.Axiom_skip -> K_skip
  | Proof.Alternation _ -> K_alternation
  | Proof.Iteration _ -> K_iteration
  | Proof.Composition _ -> K_composition
  | Proof.Concurrency _ -> K_concurrency
  | Proof.Consequence _ -> K_consequence

let of_proof ~binding ~program proof =
  let lat = Binding.lattice binding in
  let vars = Ifc_support.Sset.elements (Vars.all_vars program.Ast.body) in
  let binds =
    List.map (fun v -> (v, lat.Lattice.to_string (Binding.sbind binding v))) vars
  in
  let rec conv (p : string Proof.t) =
    {
      kind = kind_of_rule p.Proof.rule;
      pre = p.Proof.pre;
      post = p.Proof.post;
      children = List.map conv (Proof.children p);
    }
  in
  { program_digest = program_digest program; lattice = lat; binds; root = conv proof }

(* ------------------------------------------------------------------ *)
(* Strict parsing *)

exception Fail of parse_error

let chop_prefix ~prefix s =
  if String.starts_with ~prefix s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

(* Split on a multi-character separator (atoms contain no separator
   substrings, so this is unambiguous). *)
let split_str sep s =
  let m = String.length sep in
  let n = String.length s in
  let rec find i =
    if i + m > n then None
    else if String.equal (String.sub s i m) sep then Some i
    else find (i + 1)
  in
  let rec go start acc =
    match find start with
    | None -> List.rev (String.sub s start (n - start) :: acc)
    | Some i -> go (i + m) (String.sub s start (i - start) :: acc)
  in
  go 0 []

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let arity_ok kind n =
  match kind with
  | K_assign | K_wait | K_signal | K_send | K_recv | K_skip -> n = 0
  | K_iteration | K_consequence -> n = 1
  | K_alternation -> n = 2
  | K_composition | K_concurrency -> n >= 1

let arity_text = function
  | K_assign | K_wait | K_signal | K_send | K_recv | K_skip -> "no sub-derivations"
  | K_iteration | K_consequence -> "exactly 1 sub-derivation"
  | K_alternation -> "exactly 2 sub-derivations"
  | K_composition | K_concurrency -> "at least 1 sub-derivation"

let parse_exn text =
  let fail line reason = raise (Fail { line; reason }) in
  let lines =
    match List.rev (String.split_on_char '\n' text) with
    | "" :: rest -> Array.of_list (List.rev rest)
    | _ -> fail 0 "certificate must end with a newline"
  in
  let pos = ref 0 in
  let peek () = if !pos < Array.length lines then Some lines.(!pos) else None in
  let next what =
    match peek () with
    | Some l ->
      let ln = !pos + 1 in
      incr pos;
      (ln, l)
    | None -> fail (!pos + 1) ("unexpected end of certificate: expected " ^ what)
  in
  (* Version header. *)
  let ln, l = next "version header" in
  (match chop_prefix ~prefix:"ifc-cert " l with
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n = version -> ()
    | Some n -> fail ln (Printf.sprintf "unsupported certificate version %d" n)
    | None -> fail ln "malformed version header")
  | None -> fail ln "expected version header \"ifc-cert 1\"");
  (* Program digest. *)
  let ln, l = next "program digest" in
  let digest =
    match chop_prefix ~prefix:"program: " l with
    | Some d -> d
    | None -> fail ln "expected \"program: <md5-hex>\""
  in
  if String.length digest <> 32 || not (String.for_all is_hex digest) then
    fail ln "malformed program digest (expected 32 lowercase hex digits)";
  (* Lattice spec. *)
  let spec_first_line = !pos + 1 in
  let spec = ref [] in
  let rec collect_spec () =
    match peek () with
    | Some l when String.starts_with ~prefix:"lattice: " l ->
      incr pos;
      spec := Option.get (chop_prefix ~prefix:"lattice: " l) :: !spec;
      collect_spec ()
    | _ -> ()
  in
  collect_spec ();
  if !spec = [] then fail (!pos + 1) "expected at least one \"lattice: ...\" line";
  let lat =
    match Spec.parse (String.concat "\n" (List.rev !spec)) with
    | Ok lat -> lat
    | Error msg -> fail spec_first_line ("invalid lattice spec: " ^ msg)
  in
  let element ln cls =
    match lat.Lattice.of_string cls with
    | Ok c -> c
    | Error _ -> fail ln (Printf.sprintf "unknown class %S" cls)
  in
  (* Bindings, sorted strictly by variable name. *)
  let binds = ref [] in
  let rec collect_binds () =
    match peek () with
    | Some l when String.starts_with ~prefix:"bind: " l ->
      let ln = !pos + 1 in
      incr pos;
      let payload = Option.get (chop_prefix ~prefix:"bind: " l) in
      (match split_str " = " payload with
      | [ name; cls ] when name <> "" ->
        (match !binds with
        | (prev, _) :: _ when String.compare prev name >= 0 ->
          fail ln "bindings must be sorted by variable name"
        | _ -> ());
        binds := (name, lat.Lattice.to_string (element ln cls)) :: !binds
      | _ -> fail ln "expected \"bind: <variable> = <class>\"");
      collect_binds ()
    | _ -> ()
  in
  collect_binds ();
  let binds = List.rev !binds in
  (* Node count. *)
  let ln, l = next "node count" in
  let declared =
    match chop_prefix ~prefix:"nodes: " l with
    | Some n -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> n
      | _ -> fail ln "malformed node count")
    | None -> fail ln "expected \"nodes: <count>\""
  in
  (* Class expressions and assertions. *)
  let parse_part ln s =
    if String.equal s "local" then Cexpr.Local
    else if String.equal s "global" then Cexpr.Global
    else
      let inner prefix =
        match chop_prefix ~prefix s with
        | Some rest
          when String.length rest > 0 && rest.[String.length rest - 1] = ')' ->
          let v = String.sub rest 0 (String.length rest - 1) in
          if
            v <> ""
            && not (String.exists (fun c -> c = ' ' || c = '(' || c = ')') v)
          then Some v
          else None
        | _ -> None
      in
      match inner "cls(" with
      | Some v -> Cexpr.Cls v
      | None -> (
        match inner "const(" with
        | Some c -> Cexpr.Const (element ln c)
        | None ->
          fail ln (Printf.sprintf "malformed class expression part %S" s))
  in
  let parse_cexpr ln s =
    match split_str " + " s with
    | [] -> fail ln "empty class expression"
    | first :: rest ->
      List.fold_left
        (fun acc p -> Cexpr.Join (acc, parse_part ln p))
        (parse_part ln first) rest
  in
  let parse_assertion ln s =
    let n = String.length s in
    if n < 2 || s.[0] <> '{' || s.[n - 1] <> '}' then
      fail ln "assertion must be of the form {...}";
    let inner = String.sub s 1 (n - 2) in
    if String.equal inner "" then []
    else
      split_str "; " inner
      |> List.map (fun atom ->
             match split_str " <= " atom with
             | [ lhs; rhs ] ->
               Assertion.atom (parse_cexpr ln lhs) (parse_cexpr ln rhs)
             | _ ->
               fail ln
                 (Printf.sprintf "malformed atom %S (expected \"e1 <= e2\")"
                    atom))
  in
  (* Node tree, preorder, paths checked against position. *)
  let rec parse_node path =
    let ln, l = next ("node " ^ path) in
    let head = "node " ^ path ^ ": " in
    let rule =
      match chop_prefix ~prefix:head l with
      | Some r -> r
      | None -> fail ln (Printf.sprintf "expected \"node %s: <rule>\"" path)
    in
    let kind =
      match kind_of_name rule with
      | Some k -> k
      | None -> fail ln (Printf.sprintf "unknown rule %S" rule)
    in
    let ln2, l2 = next "pre assertion" in
    let pre =
      match chop_prefix ~prefix:"  pre: " l2 with
      | Some a -> parse_assertion ln2 a
      | None -> fail ln2 "expected \"  pre: {...}\""
    in
    let ln3, l3 = next "post assertion" in
    let post =
      match chop_prefix ~prefix:"  post: " l3 with
      | Some a -> parse_assertion ln3 a
      | None -> fail ln3 "expected \"  post: {...}\""
    in
    let children = ref [] in
    let continue = ref true in
    while !continue do
      let child_path = path ^ "." ^ string_of_int (List.length !children) in
      match peek () with
      | Some l when String.starts_with ~prefix:("node " ^ child_path ^ ": ") l ->
        children := parse_node child_path :: !children
      | _ -> continue := false
    done;
    let children = List.rev !children in
    if not (arity_ok kind (List.length children)) then
      fail ln
        (Printf.sprintf "rule %s requires %s, found %d" rule (arity_text kind)
           (List.length children));
    { kind; pre; post; children }
  in
  let root = parse_node "0" in
  (match peek () with
  | Some l ->
    fail (!pos + 1) (Printf.sprintf "trailing data after certificate: %S" l)
  | None -> ());
  let c = { program_digest = digest; lattice = lat; binds; root } in
  if node_count c <> declared then
    fail ln
      (Printf.sprintf "node count mismatch: header declares %d, tree has %d"
         declared (node_count c));
  c

let parse text =
  try Ok (parse_exn text) with
  | Fail e -> Error e
  | exn -> Error { line = 0; reason = "internal error: " ^ Printexc.to_string exn }
