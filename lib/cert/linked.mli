(** Linked certificates: the [ifc-cert 2] format for compositional
    certification.

    A version-2 certificate certifies a {e linked unit} (modules with
    [provides]/[requires] interfaces plus an optional main program, see
    {!Ifc_lang.Parser.parse_linked}) from per-module {e summary nodes}
    instead of per-statement proof nodes. Each summary records what the
    module's body means to the rest of the program — its symbolic
    [mod]/[flow], the residual atomic constraints its internal checks
    left over import classes, its channel endpoints and wait/signal
    obligations — keyed by the module's structural digest and, when a
    component certificate was emitted, that certificate's digest. The
    main program keeps a complete embedded version-1 certificate.

    {!check} re-validates a linked certificate end-to-end without
    re-walking any module body: it verifies the unit digest, the
    interface consistency of every summary node against the linked
    source, re-evaluates every residual constraint and export bound
    under the recorded binding, replays the top-level sequential
    composition checks from the summaries' [mod]/[flow] alone, and runs
    the embedded main certificate through the independent version-1
    {!Checker}. Supplying the component certificates ([~components])
    additionally roots each summary in a fully re-checked version-1
    proof of its module body.

    Version-1 certificates are untouched: {!Cert.version} remains [1]
    and {!Cert.parse} rejects version-2 headers, byte-identically to
    before. This module lives in the checker library and therefore — by
    the same dune-enforced trust split as {!Checker} — cannot link the
    summary generator in [ifc_modsys]. *)

(** An atomic residual constraint over import classes: the normal form
    every deferred CFM check decomposes into. [cls y] is the class the
    linker binds [y] to. *)
type constr =
  | Upper of string * string  (** [Upper (y, k)]: [cls y <= k]. *)
  | Lower of string * string  (** [Lower (k, y)]: [k <= cls y]. *)
  | Rel of string * string  (** [Rel (y, z)]: [cls y <= cls z]. *)

(** Symbolic meet-form [mod] of a module body: the meet of a concrete
    floor with the classes of the listed imports. *)
type smod = { floor : string; under : string list }

(** Symbolic [flow]: [nil], or the join of a concrete base with the
    classes of the listed imports. *)
type sflow = F_nil | F_sym of { base : string; over : string list }

type summary = {
  m_name : string;
  body_digest : string;  (** {!module_digest} of the summarized module. *)
  cert_digest : string option;
      (** MD5 hex of the component's version-1 certificate, when one was
          emitted for the import-closed module body. *)
  provides : (string * string) list;  (** Export name, upper class bound. *)
  requires : (string * string) list;  (** Import name, lower class bound. *)
  exports : (string * string) list;
      (** Export name, the class the module actually declares for it. *)
  smod : smod;
  sflow : sflow;
  constraints : constr list;  (** Sorted, deduplicated. *)
  sends : string list;  (** Channels the body sends on. *)
  recvs : string list;  (** Channels the body receives from. *)
  waits : string list;  (** Semaphores the body waits on. *)
  signals : string list;  (** Semaphores the body signals. *)
  locals_ok : bool;
      (** Did every concrete (import-free) internal check pass at summary
          time? *)
  exports_ok : bool;
      (** Does every exported variable's declared class respect its
          interface bound? Kept apart from [locals_ok] because export
          bounds are interface conformance, not Figure 2 checks. *)
}

type t = {
  linked_digest : string;  (** {!linked_digest} of the whole unit. *)
  lattice : string Ifc_lattice.Lattice.t;
  binds : (string * string) list;
      (** [variable, class] over every variable of every body, sorted. *)
  summaries : summary list;  (** One per module, in unit order. *)
  main_cert : Cert.t option;
      (** Embedded version-1 certificate for the main program, present
          iff the unit has one. *)
}

val version : int
(** The linked-certificate format version: [2]. *)

val linked_digest : Ifc_lang.Ast.linked -> string
(** MD5 hex of the unit's structural serialization (spans ignored). *)

val module_digest : Ifc_lang.Ast.module_unit -> string
(** The structural digest summaries are keyed by: MD5 hex of a direct
    byte serialization of the module (interface, declarations and
    body; source spans ignored), so two parses of the same module text
    digest identically. *)

val closed_program : Ifc_lang.Ast.module_unit -> Ifc_lang.Ast.program
(** The import-closed view of a module: its own declarations plus one
    integer declaration per import, annotated with the import's lower
    bound — the program component certificates are emitted against. *)

val main_program : binds:(string * string) list -> Ifc_lang.Ast.linked -> Ifc_lang.Ast.program option
(** The main program as certified: main declarations plus one annotated
    integer declaration per export in scope (class taken from [binds]),
    appended in module order. Deterministic given the unit and the
    recorded binding, so emitter and checker reconstruct the same
    program. *)

val bind_domain : Ifc_lang.Ast.linked -> Ifc_support.Sset.t
(** The variables a linked certificate's binding must cover: every
    variable of every body plus every interface name (an unused export
    still needs its class on record). The emitter renders exactly this
    set; {!check} enforces it in both directions. *)

val summary_to_lines : summary -> string list
(** The canonical block of lines for one summary node. *)

val summary_to_line : summary -> string
(** The block joined with tab characters — a single-line form for the
    store's summary seam. Round-trips through {!summary_of_line}. *)

val summary_of_line : string -> (summary, string) result

val to_string : t -> string
(** Canonical text form, beginning ["ifc-cert 2"]. Always ends with a
    newline. Re-emitting a parsed certificate reproduces the bytes. *)

val parse : string -> (t, Cert.parse_error) result
(** Strict parser for the version-2 grammar; rejects version-1 input
    (use {!Cert.parse}) and everything malformed. *)

val sniff_version : string -> int option
(** [sniff_version text] reads the [ifc-cert N] header alone, so callers
    can route to {!Cert.parse} or {!parse}. *)

type failure = Checker.failure = { path : string; rule : string; reason : string }

val check :
  ?components:string list ->
  t ->
  Ifc_lang.Ast.linked ->
  (unit, Checker.failure list) result
(** [check cert linked] validates [cert] against the linked source.
    Failure paths name the summary ([summary M]), the link step
    ([link i]), header pseudo-paths ([program] / [binding]), or nodes
    inside the embedded main certificate (prefixed [main/]).
    [~components] supplies version-1 certificate texts; each must parse,
    match some summary's recorded certificate digest, and fully re-check
    against that module's import-closed body. *)
