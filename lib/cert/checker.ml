(* Independent certificate validation: walk the certificate against the
   parsed program and re-check every Figure 1 rule instance locally.
   Mirrors the per-rule obligations of Ifc_logic.Check, but consumes the
   serialized assertions instead of an in-memory derivation and reports
   failures by preorder node path. Never constructs a proof. *)

module Lattice = Ifc_lattice.Lattice
module Ast = Ifc_lang.Ast
module Pretty = Ifc_lang.Pretty
module Vars = Ifc_lang.Vars
module Binding = Ifc_core.Binding
module Assertion = Ifc_logic.Assertion
module Cexpr = Ifc_logic.Cexpr
module Entail = Ifc_logic.Entail

type failure = { path : string; rule : string; reason : string }

let pp_failure ppf f = Fmt.pf ppf "at %s: [%s] %s" f.path f.rule f.reason

(* The substitution of the assignment-like axioms: the written symbol
   receives the written class joined with both certification variables. *)
let write_subst name rhs =
 fun sym ->
  match sym with
  | Cexpr.S_cls v when String.equal v name -> Some rhs
  | Cexpr.S_cls _ | Cexpr.S_local | Cexpr.S_global -> None

let check (c : Cert.t) (program : Ast.program) =
  let lat = c.Cert.lattice in
  let failures = ref [] in
  let fail path rule reason = failures := { path; rule; reason } :: !failures in
  let finish () =
    match List.rev !failures with [] -> Ok () | fs -> Error fs
  in
  (* The digest gates everything else: a certificate for a different
     program proves nothing about this one. *)
  let actual = Cert.program_digest program in
  if not (String.equal actual c.Cert.program_digest) then begin
    fail "program" "digest"
      (Printf.sprintf
         "certificate is stamped for program %s, but this program hashes to %s"
         c.Cert.program_digest actual);
    finish ()
  end
  else begin
    let entail = Entail.check lat in
    let expect_equal path rule what p q =
      if not (Assertion.equal lat p q) then
        fail path rule
          (Fmt.str "%s:@ %a@ is not@ %a" what (Assertion.pp lat) p
             (Assertion.pp lat) q)
    in
    let expect_entails path rule what hyps goals =
      if not (entail hyps goals) then
        fail path rule
          (Fmt.str "%s:@ %a |- %a fails" what (Assertion.pp lat) hyps
             (Assertion.pp lat) goals)
    in
    let triple path rule assertion =
      match Assertion.triple_of lat assertion with
      | Some t -> Some t
      | None ->
        fail path rule
          (Fmt.str "assertion not in {V,L,G} form: %a" (Assertion.pp lat)
             assertion);
        None
    in
    (* Binding coverage: the recorded binding must name exactly the
       variables of the program body — the domain of the policy
       invariant. *)
    let vars = Ifc_support.Sset.elements (Vars.all_vars program.Ast.body) in
    let bound = List.map fst c.Cert.binds in
    if not (List.equal String.equal vars bound) then
      fail "binding" "coverage"
        (Printf.sprintf
           "certificate binds [%s] but the program's variables are [%s]"
           (String.concat " " bound)
           (String.concat " " vars));
    let elem cls =
      match lat.Lattice.of_string cls with
      | Ok e -> e
      | Error _ -> lat.Lattice.top
    in
    let binding =
      Binding.make lat (List.map (fun (v, cls) -> (v, elem cls)) c.Cert.binds)
    in
    let child_path path i = path ^ "." ^ string_of_int i in
    (* Pair a node's sub-derivations with the statements they must cover;
       empty when the shapes do not align (reported by the main walk). *)
    let sub_pairs (n : Cert.node) (s : Ast.stmt) =
      match (n.Cert.kind, n.Cert.children, s.Ast.node) with
      | Cert.K_consequence, [ inner ], _ -> [ (inner, s) ]
      | Cert.K_alternation, [ a; b ], Ast.If (_, s1, s2) -> [ (a, s1); (b, s2) ]
      | Cert.K_iteration, [ b ], Ast.While (_, body) -> [ (b, body) ]
      | Cert.K_composition, ns, Ast.Seq ss
        when List.length ns = List.length ss ->
        List.combine ns ss
      | Cert.K_concurrency, ns, Ast.Cobegin bs
        when List.length ns = List.length bs ->
        List.combine ns bs
      | _ -> []
    in
    let rec collect_actions (n, (s : Ast.stmt)) acc =
      match (n.Cert.kind, s.Ast.node) with
      | Cert.K_assign, Ast.Assign (x, e) ->
        (n, x, Cexpr.of_expr lat e, s) :: acc
      | Cert.K_assign, Ast.Declassify (x, _, cls) ->
        (n, x, Cexpr.Const (elem cls), s) :: acc
      | Cert.K_assign, Ast.Store (a, i, e) ->
        ( n,
          a,
          Cexpr.Join
            (Cexpr.Cls a, Cexpr.Join (Cexpr.of_expr lat i, Cexpr.of_expr lat e)),
          s )
        :: acc
      | Cert.K_wait, Ast.Wait sem | Cert.K_signal, Ast.Signal sem ->
        (n, sem, Cexpr.Cls sem, s) :: acc
      | Cert.K_send, Ast.Send (chan, e) ->
        (* A send writes the channel: old contents persist and the
           payload joins in. *)
        (n, chan, Cexpr.Join (Cexpr.Cls chan, Cexpr.of_expr lat e), s) :: acc
      | Cert.K_recv, Ast.Recv (chan, x) ->
        (* A recv writes both the target and the channel, each bounded
           by the channel's class. *)
        (n, x, Cexpr.Cls chan, s) :: (n, chan, Cexpr.Cls chan, s) :: acc
      | _ ->
        List.fold_left
          (fun acc pair -> collect_actions pair acc)
          acc (sub_pairs n s)
    in
    let rec all_assertions (n : Cert.node) acc =
      n.Cert.pre :: n.Cert.post
      :: List.fold_left (fun a ch -> all_assertions ch a) acc n.Cert.children
    in
    (* Interference freedom for the concurrency rule: every assertion of
       branch [i] must be preserved by every write action of a sibling,
       with the acting process's certification variables approximated by
       the bounds in the action's precondition. *)
    let interference_free path pairs =
      List.iteri
        (fun i (pi, _) ->
          List.iteri
            (fun j pair_j ->
              if i <> j then
                List.iter
                  (fun (action, name, written_class, stmt) ->
                    let bounds =
                      match Assertion.triple_of lat action.Cert.pre with
                      | Some { Assertion.l = lb; g = gb; _ } ->
                        Cexpr.Join (lb, gb)
                      | None -> Cexpr.Join (Cexpr.Local, Cexpr.Global)
                    in
                    let sigma =
                      write_subst name (Cexpr.Join (written_class, bounds))
                    in
                    List.iter
                      (fun r ->
                        let r' = Assertion.subst sigma r in
                        if not (entail (r @ action.Cert.pre) r') then
                          fail path "concurrency"
                            (Fmt.str
                               "interference: %a not preserved by %s under %a"
                               (Assertion.pp lat) r
                               (Pretty.stmt_to_string stmt) (Assertion.pp lat)
                               action.Cert.pre))
                      (all_assertions pi []))
                  (collect_actions pair_j []))
            pairs)
        pairs
    in
    let rec go path (n : Cert.node) (s : Ast.stmt) =
      match (n.Cert.kind, n.Cert.children, s.Ast.node) with
      | Cert.K_skip, [], Ast.Skip ->
        expect_equal path "skip" "pre must equal post" n.Cert.pre n.Cert.post
      | Cert.K_assign, [], Ast.Assign (x, e) ->
        let rhs =
          Cexpr.Join (Cexpr.of_expr lat e, Cexpr.Join (Cexpr.Local, Cexpr.Global))
        in
        expect_equal path "assign" "pre must be post[x <- e(+)local(+)global]"
          n.Cert.pre
          (Assertion.subst (write_subst x rhs) n.Cert.post)
      | Cert.K_assign, [], Ast.Declassify (x, _, cls) ->
        let rhs =
          Cexpr.Join
            (Cexpr.Const (elem cls), Cexpr.Join (Cexpr.Local, Cexpr.Global))
        in
        expect_equal path "declassify"
          "pre must be post[x <- C(+)local(+)global]" n.Cert.pre
          (Assertion.subst (write_subst x rhs) n.Cert.post)
      | Cert.K_assign, [], Ast.Store (a, i, e) ->
        let rhs =
          Cexpr.Join
            ( Cexpr.Cls a,
              Cexpr.Join
                ( Cexpr.Join (Cexpr.of_expr lat i, Cexpr.of_expr lat e),
                  Cexpr.Join (Cexpr.Local, Cexpr.Global) ) )
        in
        expect_equal path "store"
          "pre must be post[a <- a(+)i(+)e(+)local(+)global]" n.Cert.pre
          (Assertion.subst (write_subst a rhs) n.Cert.post)
      | Cert.K_signal, [], Ast.Signal sem ->
        let rhs =
          Cexpr.Join (Cexpr.Cls sem, Cexpr.Join (Cexpr.Local, Cexpr.Global))
        in
        expect_equal path "signal"
          "pre must be post[sem <- sem(+)local(+)global]" n.Cert.pre
          (Assertion.subst (write_subst sem rhs) n.Cert.post)
      | Cert.K_wait, [], Ast.Wait sem ->
        let rhs =
          Cexpr.Join (Cexpr.Cls sem, Cexpr.Join (Cexpr.Local, Cexpr.Global))
        in
        let sigma sym =
          match sym with
          | Cexpr.S_cls v when String.equal v sem -> Some rhs
          | Cexpr.S_global -> Some rhs
          | Cexpr.S_cls _ | Cexpr.S_local -> None
        in
        expect_equal path "wait"
          "pre must be post[sem <- sem(+)local(+)global, global <- \
           sem(+)local(+)global]"
          n.Cert.pre
          (Assertion.subst sigma n.Cert.post)
      | Cert.K_send, [], Ast.Send (chan, e) ->
        let rhs =
          Cexpr.Join
            ( Cexpr.Cls chan,
              Cexpr.Join
                (Cexpr.of_expr lat e, Cexpr.Join (Cexpr.Local, Cexpr.Global)) )
        in
        expect_equal path "send"
          "pre must be post[c <- c(+)e(+)local(+)global]" n.Cert.pre
          (Assertion.subst (write_subst chan rhs) n.Cert.post)
      | Cert.K_recv, [], Ast.Recv (chan, x) ->
        let rhs =
          Cexpr.Join (Cexpr.Cls chan, Cexpr.Join (Cexpr.Local, Cexpr.Global))
        in
        let sigma sym =
          match sym with
          | Cexpr.S_cls v when String.equal v chan || String.equal v x ->
            Some rhs
          | Cexpr.S_global -> Some rhs
          | Cexpr.S_cls _ | Cexpr.S_local -> None
        in
        expect_equal path "recv"
          "pre must be post[x <- c(+)local(+)global, c <- \
           c(+)local(+)global, global <- c(+)local(+)global]"
          n.Cert.pre
          (Assertion.subst sigma n.Cert.post)
      | Cert.K_consequence, [ inner ], _ ->
        expect_entails path "consequence" "pre |- inner pre" n.Cert.pre
          inner.Cert.pre;
        expect_entails path "consequence" "inner post |- post" inner.Cert.post
          n.Cert.post;
        go (child_path path 0) inner s
      | Cert.K_composition, ns, Ast.Seq ss ->
        if List.length ns <> List.length ss then
          fail path "composition" "arity mismatch with begin..end"
        else begin
          (match ns with
          | [] -> fail path "composition" "empty composition"
          | first :: _ ->
            expect_equal path "composition" "pre = first component's pre"
              n.Cert.pre first.Cert.pre;
            let last = List.nth ns (List.length ns - 1) in
            expect_equal path "composition" "post = last component's post"
              n.Cert.post last.Cert.post;
            let rec chain = function
              | a :: (b :: _ as rest) ->
                expect_equal path "composition" "adjacent post/pre must agree"
                  a.Cert.post b.Cert.pre;
                chain rest
              | [ _ ] | [] -> ()
            in
            chain ns);
          List.iteri
            (fun i (child, st) -> go (child_path path i) child st)
            (List.combine ns ss)
        end
      | Cert.K_alternation, [ p1; p2 ], Ast.If (cond, _, _) ->
        (match
           ( triple path "alternation" n.Cert.pre,
             triple path "alternation" n.Cert.post,
             triple path "alternation" p1.Cert.pre,
             triple path "alternation" p1.Cert.post )
         with
        | Some pre_t, Some post_t, Some b_pre, Some b_post ->
          expect_equal path "alternation" "branch pres must agree" p1.Cert.pre
            p2.Cert.pre;
          expect_equal path "alternation" "branch posts must agree"
            p1.Cert.post p2.Cert.post;
          expect_equal path "alternation" "V preserved into branches"
            pre_t.Assertion.v b_pre.Assertion.v;
          expect_equal path "alternation" "V' propagated from branches"
            post_t.Assertion.v b_post.Assertion.v;
          if not (Cexpr.equal lat pre_t.Assertion.g b_pre.Assertion.g) then
            fail path "alternation" "branch pre G must equal conclusion pre G";
          if not (Cexpr.equal lat post_t.Assertion.g b_post.Assertion.g) then
            fail path "alternation"
              "branch post G' must equal conclusion post G'";
          if not (Cexpr.equal lat b_pre.Assertion.l b_post.Assertion.l) then
            fail path "alternation"
              "branch L' must be invariant across the branch";
          if not (Cexpr.equal lat pre_t.Assertion.l post_t.Assertion.l) then
            fail path "alternation" "conclusion L must be preserved";
          let goal =
            [ Assertion.atom
                (Cexpr.Join (Cexpr.Local, Cexpr.of_expr lat cond))
                b_pre.Assertion.l ]
          in
          expect_entails path "alternation" "side condition local(+)e <= L'"
            n.Cert.pre goal
        | _ -> ());
        List.iteri
          (fun i (child, st) -> go (child_path path i) child st)
          (sub_pairs n s)
      | Cert.K_iteration, [ body ], Ast.While (cond, _) ->
        (match
           ( triple path "iteration" n.Cert.pre,
             triple path "iteration" n.Cert.post,
             triple path "iteration" body.Cert.pre )
         with
        | Some pre_t, Some post_t, Some b_pre ->
          expect_equal path "iteration" "body invariant (pre = post)"
            body.Cert.pre body.Cert.post;
          expect_equal path "iteration" "V preserved into body"
            pre_t.Assertion.v b_pre.Assertion.v;
          expect_equal path "iteration" "conclusion preserves V"
            pre_t.Assertion.v post_t.Assertion.v;
          if not (Cexpr.equal lat pre_t.Assertion.g b_pre.Assertion.g) then
            fail path "iteration" "body G must equal conclusion pre G";
          if not (Cexpr.equal lat pre_t.Assertion.l post_t.Assertion.l) then
            fail path "iteration" "conclusion L must be preserved";
          let e_class = Cexpr.of_expr lat cond in
          expect_entails path "iteration" "side condition local(+)e <= L'"
            n.Cert.pre
            [ Assertion.atom
                (Cexpr.Join (Cexpr.Local, e_class))
                b_pre.Assertion.l ];
          expect_entails path "iteration"
            "side condition global(+)local(+)e <= G'" n.Cert.pre
            [ Assertion.atom
                (Cexpr.Join (Cexpr.Global, Cexpr.Join (Cexpr.Local, e_class)))
                post_t.Assertion.g ]
        | _ -> ());
        go (child_path path 0) body
          (match s.Ast.node with Ast.While (_, b) -> b | _ -> s)
      | Cert.K_concurrency, ns, Ast.Cobegin branches ->
        if List.length ns <> List.length branches then
          fail path "concurrency" "arity mismatch with cobegin..coend"
        else begin
          (match
             ( triple path "concurrency" n.Cert.pre,
               triple path "concurrency" n.Cert.post )
           with
          | Some pre_t, Some post_t ->
            let branch_triples =
              List.filter_map
                (fun (b : Cert.node) ->
                  match
                    ( Assertion.triple_of lat b.Cert.pre,
                      Assertion.triple_of lat b.Cert.post )
                  with
                  | Some a, Some b -> Some (a, b)
                  | _ ->
                    fail path "concurrency"
                      "branch assertion not in {V,L,G} form";
                    None)
                ns
            in
            if List.length branch_triples = List.length ns then begin
              List.iter
                (fun ((bp : string Assertion.triple), (bq : string Assertion.triple)) ->
                  if not (Cexpr.equal lat bp.Assertion.l pre_t.Assertion.l)
                  then
                    fail path "concurrency"
                      "branch pre L differs from conclusion L";
                  if not (Cexpr.equal lat bq.Assertion.l pre_t.Assertion.l)
                  then
                    fail path "concurrency"
                      "branch post L differs from conclusion L";
                  if not (Cexpr.equal lat bp.Assertion.g pre_t.Assertion.g)
                  then
                    fail path "concurrency"
                      "branch pre G differs from conclusion G";
                  if not (Cexpr.equal lat bq.Assertion.g post_t.Assertion.g)
                  then
                    fail path "concurrency"
                      "branch post G' differs from conclusion G'")
                branch_triples;
              expect_equal path "concurrency" "pre V = conjunction of branch Vs"
                pre_t.Assertion.v
                (List.concat_map (fun (bp, _) -> bp.Assertion.v) branch_triples);
              expect_equal path "concurrency"
                "post V = conjunction of branch V's" post_t.Assertion.v
                (List.concat_map (fun (_, bq) -> bq.Assertion.v) branch_triples);
              if not (Cexpr.equal lat pre_t.Assertion.l post_t.Assertion.l)
              then fail path "concurrency" "conclusion L must be preserved"
            end
          | _ -> ());
          interference_free path (List.combine ns branches);
          List.iteri
            (fun i (child, st) -> go (child_path path i) child st)
            (List.combine ns branches)
        end
      | ( ( Cert.K_assign | Cert.K_wait | Cert.K_signal | Cert.K_send
          | Cert.K_recv | Cert.K_skip | Cert.K_alternation | Cert.K_iteration
          | Cert.K_composition | Cert.K_concurrency | Cert.K_consequence ),
          _,
          _ ) ->
        fail path (Cert.rule_name n.Cert.kind)
          "rule does not match the statement form"
    in
    go "0" c.Cert.root program.Ast.body;
    (* Complete invariance (Definition 7): the precondition of every
       statement occurrence — the outermost judgment, so consequence
       inner nodes are not occurrences — and the root's postcondition
       carry the policy invariant as their V part. *)
    let invariant = Assertion.policy binding vars in
    let v_ok a =
      match Assertion.triple_of lat a with
      | Some t -> Assertion.equal lat t.Assertion.v invariant
      | None -> false
    in
    let rec skip_conseq path (n : Cert.node) =
      match (n.Cert.kind, n.Cert.children) with
      | Cert.K_consequence, [ inner ] -> skip_conseq (child_path path 0) inner
      | _ -> (path, n)
    in
    let rec occurrence path (n : Cert.node) =
      if not (v_ok n.Cert.pre) then
        fail path "invariance"
          "occurrence precondition is not the policy invariant in {V,L,G} form";
      let path', n' = skip_conseq path n in
      List.iteri
        (fun i child -> occurrence (child_path path' i) child)
        n'.Cert.children
    in
    occurrence "0" c.Cert.root;
    if not (v_ok c.Cert.root.Cert.post) then
      fail "0" "invariance"
        "root postcondition is not the policy invariant in {V,L,G} form";
    (match Assertion.triple_of lat c.Cert.root.Cert.pre with
    | Some { Assertion.l = lb; g = gb; _ } ->
      let is_const e = (Cexpr.normalize lat e).Cexpr.atoms = [] in
      if not (is_const lb && is_const gb) then
        fail "0" "root"
          "root precondition local/global bounds must be constant classes"
    | None -> ());
    finish ()
  end
