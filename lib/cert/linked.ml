(* The ifc-cert 2 linked-certificate format and its independent checker.
   See the interface for the trust contract. *)

module Lattice = Ifc_lattice.Lattice
module Spec = Ifc_lattice.Spec
module Extended = Ifc_lattice.Extended
module Ast = Ifc_lang.Ast
module Pretty = Ifc_lang.Pretty
module Vars = Ifc_lang.Vars
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Sset = Ifc_support.Sset

type constr =
  | Upper of string * string
  | Lower of string * string
  | Rel of string * string

type smod = { floor : string; under : string list }

type sflow = F_nil | F_sym of { base : string; over : string list }

type summary = {
  m_name : string;
  body_digest : string;
  cert_digest : string option;
  provides : (string * string) list;
  requires : (string * string) list;
  exports : (string * string) list;
  smod : smod;
  sflow : sflow;
  constraints : constr list;
  sends : string list;
  recvs : string list;
  waits : string list;
  signals : string list;
  locals_ok : bool;
  exports_ok : bool;
}

type t = {
  linked_digest : string;
  lattice : string Lattice.t;
  binds : (string * string) list;
  summaries : summary list;
  main_cert : Cert.t option;
}

let version = 2

(* Digests are structural: summary lookups digest the module on every
   certification, so the canonical form fed to MD5 is a direct byte
   fold over the tree rather than Format-based pretty-printing (whose
   constant would dominate the store-backed link path). Strings are
   length-prefixed and lists length-tagged, so distinct trees cannot
   collide by concatenation; source spans are ignored, so two parses
   of the same module share a digest. *)
let serialize_module, serialize_linked =
  let str b s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  let opt_str b = function
    | None -> Buffer.add_char b '-'
    | Some s -> str b s
  in
  let int b n =
    Buffer.add_char b '#';
    Buffer.add_string b (string_of_int n)
  in
  let binop = function
    | Ast.Add -> 'a'
    | Ast.Sub -> 's'
    | Ast.Mul -> 'm'
    | Ast.Div -> 'd'
    | Ast.Mod -> 'r'
    | Ast.Eq -> 'e'
    | Ast.Ne -> 'n'
    | Ast.Lt -> 'l'
    | Ast.Le -> 'L'
    | Ast.Gt -> 'g'
    | Ast.Ge -> 'G'
    | Ast.And -> '&'
    | Ast.Or -> '|'
  in
  let rec expr b = function
    | Ast.Int n ->
      Buffer.add_char b 'I';
      int b n
    | Ast.Bool v ->
      Buffer.add_char b 'B';
      Buffer.add_char b (if v then 't' else 'f')
    | Ast.Var x ->
      Buffer.add_char b 'V';
      str b x
    | Ast.Index (a, i) ->
      Buffer.add_char b 'X';
      str b a;
      expr b i
    | Ast.Unop (op, e) ->
      Buffer.add_char b 'U';
      Buffer.add_char b (match op with Ast.Neg -> '-' | Ast.Not -> '!');
      expr b e
    | Ast.Binop (op, e1, e2) ->
      Buffer.add_char b 'O';
      Buffer.add_char b (binop op);
      expr b e1;
      expr b e2
  in
  let rec stmt b (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Skip -> Buffer.add_char b 'k'
    | Ast.Assign (x, e) ->
      Buffer.add_char b '=';
      str b x;
      expr b e
    | Ast.Declassify (x, e, c) ->
      Buffer.add_char b 'D';
      str b x;
      expr b e;
      str b c
    | Ast.Store (a, i, e) ->
      Buffer.add_char b 'A';
      str b a;
      expr b i;
      expr b e
    | Ast.If (e, s1, s2) ->
      Buffer.add_char b 'i';
      expr b e;
      stmt b s1;
      stmt b s2
    | Ast.While (e, body) ->
      Buffer.add_char b 'w';
      expr b e;
      stmt b body
    | Ast.Seq ss ->
      Buffer.add_char b ';';
      int b (List.length ss);
      List.iter (stmt b) ss
    | Ast.Cobegin ss ->
      Buffer.add_char b 'c';
      int b (List.length ss);
      List.iter (stmt b) ss
    | Ast.Wait x ->
      Buffer.add_char b 'W';
      str b x
    | Ast.Signal x ->
      Buffer.add_char b 'S';
      str b x
    | Ast.Send (ch, e) ->
      Buffer.add_char b '>';
      str b ch;
      expr b e
    | Ast.Recv (ch, x) ->
      Buffer.add_char b '<';
      str b ch;
      str b x
  in
  let decl b = function
    | Ast.Var_decl { name; cls } ->
      Buffer.add_char b 'v';
      str b name;
      opt_str b cls
    | Ast.Arr_decl { name; size; cls } ->
      Buffer.add_char b 'y';
      str b name;
      int b size;
      opt_str b cls
    | Ast.Sem_decl { name; init; cls } ->
      Buffer.add_char b 'z';
      str b name;
      int b init;
      opt_str b cls
    | Ast.Chan_decl { name; cap; cls } ->
      Buffer.add_char b 'q';
      str b name;
      int b cap;
      opt_str b cls
  in
  let entry b (e : Ast.iface_entry) =
    str b e.Ast.iv_name;
    str b e.Ast.iv_class
  in
  let module_unit b (m : Ast.module_unit) =
    str b m.Ast.iface.Ast.m_name;
    int b (List.length m.Ast.iface.Ast.provides);
    List.iter (entry b) m.Ast.iface.Ast.provides;
    int b (List.length m.Ast.iface.Ast.requires);
    List.iter (entry b) m.Ast.iface.Ast.requires;
    int b (List.length m.Ast.m_decls);
    List.iter (decl b) m.Ast.m_decls;
    stmt b m.Ast.m_body
  in
  let program b (p : Ast.program) =
    int b (List.length p.Ast.decls);
    List.iter (decl b) p.Ast.decls;
    stmt b p.Ast.body
  in
  let serialize_module m =
    let b = Buffer.create 1024 in
    module_unit b m;
    Buffer.contents b
  in
  let serialize_linked (l : Ast.linked) =
    let b = Buffer.create 4096 in
    int b (List.length l.Ast.modules);
    List.iter (module_unit b) l.Ast.modules;
    (match l.Ast.main with
    | None -> Buffer.add_char b '-'
    | Some p ->
      Buffer.add_char b 'P';
      program b p);
    Buffer.contents b
  in
  (serialize_module, serialize_linked)

let linked_digest l = Digest.to_hex (Digest.string (serialize_linked l))

let module_digest m = Digest.to_hex (Digest.string (serialize_module m))

let closed_program (m : Ast.module_unit) =
  let imports =
    List.map
      (fun (e : Ast.iface_entry) ->
        Ast.Var_decl { name = e.iv_name; cls = Some e.iv_class })
      m.iface.requires
  in
  { Ast.decls = m.m_decls @ imports; body = m.m_body }

let main_program ~binds (l : Ast.linked) =
  match l.main with
  | None -> None
  | Some p ->
    let declared =
      List.map
        (function
          | Ast.Var_decl { name; _ }
          | Ast.Arr_decl { name; _ }
          | Ast.Sem_decl { name; _ }
          | Ast.Chan_decl { name; _ } ->
            name)
        p.decls
      |> Sset.of_list
    in
    let exports =
      List.concat_map
        (fun (m : Ast.module_unit) ->
          List.filter_map
            (fun (e : Ast.iface_entry) ->
              if Sset.mem e.iv_name declared then None
              else
                Some
                  (Ast.Var_decl
                     { name = e.iv_name; cls = List.assoc_opt e.iv_name binds }))
            m.iface.provides)
        l.modules
    in
    Some { p with decls = p.decls @ exports }

(* ------------------------------------------------------------------ *)
(* Rendering *)

(* Canonical constraint order: constructor rank, then operands. *)
let constr_key = function
  | Upper (y, k) -> (0, y, k)
  | Lower (k, y) -> (1, y, k)
  | Rel (y, z) -> (2, y, z)

let sort_constraints cs =
  List.sort_uniq (fun a b -> compare (constr_key a) (constr_key b)) cs

let render_constr = function
  | Upper (y, k) -> Printf.sprintf "cls(%s) <= const(%s)" y k
  | Lower (k, y) -> Printf.sprintf "const(%s) <= cls(%s)" k y
  | Rel (y, z) -> Printf.sprintf "cls(%s) <= cls(%s)" y z

let render_smod (m : smod) =
  let atoms = List.map (fun y -> "cls(" ^ y ^ ")") (List.sort_uniq compare m.under) in
  if atoms = [] then "const(" ^ m.floor ^ ")"
  else String.concat " * " (atoms @ [ "const(" ^ m.floor ^ ")" ])

let render_sflow = function
  | F_nil -> "nil"
  | F_sym { base; over } ->
    let atoms = List.map (fun y -> "cls(" ^ y ^ ")") (List.sort_uniq compare over) in
    if atoms = [] then "const(" ^ base ^ ")"
    else String.concat " + " (atoms @ [ "const(" ^ base ^ ")" ])

let render_iface rel entries =
  if entries = [] then "-"
  else
    String.concat ", "
      (List.map (fun (n, k) -> Printf.sprintf "%s %s %s" n rel k) entries)

let render_exports entries =
  if entries = [] then "-"
  else String.concat ", " (List.map (fun (n, c) -> Printf.sprintf "%s = %s" n c) entries)

let render_group name xs =
  Printf.sprintf "%s(%s)" name (String.concat "," (List.sort_uniq compare xs))

let summary_to_lines (s : summary) =
  [
    Printf.sprintf "summary %s:" s.m_name;
    Printf.sprintf "  body: %s" s.body_digest;
    Printf.sprintf "  cert: %s" (Option.value s.cert_digest ~default:"-");
    Printf.sprintf "  provides: %s" (render_iface "<=" s.provides);
    Printf.sprintf "  requires: %s" (render_iface ">=" s.requires);
    Printf.sprintf "  exports: %s" (render_exports s.exports);
    Printf.sprintf "  mod: %s" (render_smod s.smod);
    Printf.sprintf "  flow: %s" (render_sflow s.sflow);
    Printf.sprintf "  constraints: {%s}"
      (String.concat "; " (List.map render_constr (sort_constraints s.constraints)));
    Printf.sprintf "  obligations: %s %s %s %s" (render_group "sends" s.sends)
      (render_group "recvs" s.recvs) (render_group "waits" s.waits)
      (render_group "signals" s.signals);
    Printf.sprintf "  locals: %s" (if s.locals_ok then "ok" else "fail");
    Printf.sprintf "  bounds: %s" (if s.exports_ok then "ok" else "fail");
  ]

let summary_to_line s = String.concat "\t" (summary_to_lines s)

let to_string (c : t) =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "ifc-cert %d" version;
  line "linked: %s" c.linked_digest;
  List.iter
    (fun l -> line "lattice: %s" l)
    (String.split_on_char '\n' (Spec.to_text c.lattice)
    |> List.map String.trim
    |> List.filter (fun l -> l <> ""));
  List.iter (fun (v, cls) -> line "bind: %s = %s" v cls) c.binds;
  line "summaries: %d" (List.length c.summaries);
  List.iter (fun s -> List.iter (fun l -> line "%s" l) (summary_to_lines s)) c.summaries;
  (match c.main_cert with
  | None -> line "main: 0"
  | Some cert ->
    line "main: 1";
    Buffer.add_string buf (Cert.to_string cert));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Strict parsing *)

type parse_error = Cert.parse_error = { line : int; reason : string }

exception Fail of parse_error

let fail line reason = raise (Fail { line; reason })

let chop_prefix ~prefix s =
  if String.starts_with ~prefix s then
    Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

let split_str sep s =
  let m = String.length sep in
  let n = String.length s in
  let rec find i =
    if i + m > n then None
    else if String.equal (String.sub s i m) sep then Some i
    else find (i + 1)
  in
  let rec go start acc =
    match find start with
    | None -> List.rev (String.sub s start (n - start) :: acc)
    | Some i -> go (i + m) (String.sub s start (i - start) :: acc)
  in
  go 0 []

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

let valid_digest d = String.length d = 32 && String.for_all is_hex d

let valid_name v =
  v <> "" && not (String.exists (fun c -> c = ' ' || c = '(' || c = ')' || c = ',') v)

(* "cls(y)" -> y, or "const(k)" -> k, under the given head. *)
let unwrap head ln s =
  match chop_prefix ~prefix:(head ^ "(") s with
  | Some rest when String.length rest > 0 && rest.[String.length rest - 1] = ')' ->
    let v = String.sub rest 0 (String.length rest - 1) in
    if valid_name v then v
    else fail ln (Printf.sprintf "malformed %s atom %S" head s)
  | _ -> fail ln (Printf.sprintf "expected %s(...), found %S" head s)

let parse_smod element ln s =
  match List.rev (split_str " * " s) with
  | [] -> fail ln "empty mod"
  | last :: rev_atoms ->
    let floor = element ln (unwrap "const" ln last) in
    let under = List.rev_map (fun a -> unwrap "cls" ln a) rev_atoms in
    if rev_atoms <> [] && List.length (List.sort_uniq compare under) <> List.length under
    then fail ln "duplicate cls atom in mod"
    else { floor; under = List.sort_uniq compare under }

let parse_sflow element ln s =
  if String.equal s "nil" then F_nil
  else
    match List.rev (split_str " + " s) with
    | [] -> fail ln "empty flow"
    | last :: rev_atoms ->
      let base = element ln (unwrap "const" ln last) in
      let over = List.rev_map (fun a -> unwrap "cls" ln a) rev_atoms in
      F_sym { base; over = List.sort_uniq compare over }

let parse_constr element ln s =
  match split_str " <= " s with
  | [ lhs; rhs ] -> (
    let cls_of p = chop_prefix ~prefix:"cls(" p in
    match (cls_of lhs, cls_of rhs) with
    | Some _, Some _ -> Rel (unwrap "cls" ln lhs, unwrap "cls" ln rhs)
    | Some _, None -> Upper (unwrap "cls" ln lhs, element ln (unwrap "const" ln rhs))
    | None, Some _ -> Lower (element ln (unwrap "const" ln lhs), unwrap "cls" ln rhs)
    | None, None -> fail ln (Printf.sprintf "constraint %S relates two constants" s))
  | _ -> fail ln (Printf.sprintf "malformed constraint %S" s)

let parse_iface rel ln s =
  if String.equal s "-" then []
  else
    split_str ", " s
    |> List.map (fun entry ->
           match split_str (" " ^ rel ^ " ") entry with
           | [ name; cls ] when valid_name name && valid_name cls -> (name, cls)
           | _ -> fail ln (Printf.sprintf "malformed interface entry %S" entry))

let parse_exports ln s =
  if String.equal s "-" then []
  else
    split_str ", " s
    |> List.map (fun entry ->
           match split_str " = " entry with
           | [ name; cls ] when valid_name name && valid_name cls -> (name, cls)
           | _ -> fail ln (Printf.sprintf "malformed export entry %S" entry))

let parse_group name ln s =
  match chop_prefix ~prefix:(name ^ "(") s with
  | Some rest when String.length rest > 0 && rest.[String.length rest - 1] = ')' ->
    let inner = String.sub rest 0 (String.length rest - 1) in
    if inner = "" then []
    else
      String.split_on_char ',' inner
      |> List.map (fun v ->
             if valid_name v then v
             else fail ln (Printf.sprintf "malformed %s name %S" name v))
  | _ -> fail ln (Printf.sprintf "expected %s(...), found %S" name s)

let parse_ok_fail ln s =
  match s with
  | "ok" -> true
  | "fail" -> false
  | _ -> fail ln (Printf.sprintf "expected \"ok\" or \"fail\", found %S" s)

(* Parse one summary block from an array of (lineno, line) pairs. *)
let parse_summary_block element next =
  let field prefix =
    let ln, l = next ("\"" ^ prefix ^ "\"") in
    match chop_prefix ~prefix:("  " ^ prefix ^ ": ") l with
    | Some rest -> (ln, rest)
    | None -> fail ln (Printf.sprintf "expected \"  %s: ...\"" prefix)
  in
  let ln, l = next "summary header" in
  let m_name =
    match chop_prefix ~prefix:"summary " l with
    | Some rest when String.length rest > 0 && rest.[String.length rest - 1] = ':' ->
      let n = String.sub rest 0 (String.length rest - 1) in
      if valid_name n then n else fail ln (Printf.sprintf "malformed module name %S" n)
    | _ -> fail ln "expected \"summary <name>:\""
  in
  let ln, body_digest = field "body" in
  if not (valid_digest body_digest) then fail ln "malformed body digest";
  let ln, cert = field "cert" in
  let cert_digest =
    if String.equal cert "-" then None
    else if valid_digest cert then Some cert
    else fail ln "malformed component certificate digest"
  in
  let ln, s = field "provides" in
  let provides = parse_iface "<=" ln s in
  let ln, s = field "requires" in
  let requires = parse_iface ">=" ln s in
  let ln, s = field "exports" in
  let exports = parse_exports ln s in
  List.iter (fun (_, c) -> ignore (element ln c)) (provides @ requires @ exports);
  let ln, s = field "mod" in
  let smod = parse_smod element ln s in
  let ln, s = field "flow" in
  let sflow = parse_sflow element ln s in
  let ln, s = field "constraints" in
  let constraints =
    let n = String.length s in
    if n < 2 || s.[0] <> '{' || s.[n - 1] <> '}' then
      fail ln "constraints must be of the form {...}"
    else
      let inner = String.sub s 1 (n - 2) in
      if String.equal inner "" then []
      else split_str "; " inner |> List.map (parse_constr element ln)
  in
  let ln, s = field "obligations" in
  let sends, recvs, waits, signals =
    match split_str ") " s with
    | [ a; b; c; d ] ->
      ( parse_group "sends" ln (a ^ ")"),
        parse_group "recvs" ln (b ^ ")"),
        parse_group "waits" ln (c ^ ")"),
        parse_group "signals" ln d )
    | _ -> fail ln "expected \"sends(...) recvs(...) waits(...) signals(...)\""
  in
  let ln, s = field "locals" in
  let locals_ok = parse_ok_fail ln s in
  let ln, s = field "bounds" in
  let exports_ok = parse_ok_fail ln s in
  {
    m_name;
    body_digest;
    cert_digest;
    provides;
    requires;
    exports;
    smod;
    sflow;
    constraints = sort_constraints constraints;
    sends;
    recvs;
    waits;
    signals;
    locals_ok;
    exports_ok;
  }

let parse_exn text =
  let lines =
    match List.rev (String.split_on_char '\n' text) with
    | "" :: rest -> Array.of_list (List.rev rest)
    | _ -> fail 0 "certificate must end with a newline"
  in
  let pos = ref 0 in
  let peek () = if !pos < Array.length lines then Some lines.(!pos) else None in
  let next what =
    match peek () with
    | Some l ->
      let ln = !pos + 1 in
      incr pos;
      (ln, l)
    | None -> fail (!pos + 1) ("unexpected end of certificate: expected " ^ what)
  in
  let ln, l = next "version header" in
  (match chop_prefix ~prefix:"ifc-cert " l with
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n = version -> ()
    | Some n -> fail ln (Printf.sprintf "unsupported linked-certificate version %d" n)
    | None -> fail ln "malformed version header")
  | None -> fail ln "expected version header \"ifc-cert 2\"");
  let ln, l = next "linked digest" in
  let digest =
    match chop_prefix ~prefix:"linked: " l with
    | Some d -> d
    | None -> fail ln "expected \"linked: <md5-hex>\""
  in
  if not (valid_digest digest) then
    fail ln "malformed linked digest (expected 32 lowercase hex digits)";
  let spec_first_line = !pos + 1 in
  let spec = ref [] in
  let rec collect_spec () =
    match peek () with
    | Some l when String.starts_with ~prefix:"lattice: " l ->
      incr pos;
      spec := Option.get (chop_prefix ~prefix:"lattice: " l) :: !spec;
      collect_spec ()
    | _ -> ()
  in
  collect_spec ();
  if !spec = [] then fail (!pos + 1) "expected at least one \"lattice: ...\" line";
  let lat =
    match Spec.parse (String.concat "\n" (List.rev !spec)) with
    | Ok lat -> lat
    | Error msg -> fail spec_first_line ("invalid lattice spec: " ^ msg)
  in
  let element ln cls =
    match lat.Lattice.of_string cls with
    | Ok c -> c
    | Error _ -> fail ln (Printf.sprintf "unknown class %S" cls)
  in
  let binds = ref [] in
  let rec collect_binds () =
    match peek () with
    | Some l when String.starts_with ~prefix:"bind: " l ->
      let ln = !pos + 1 in
      incr pos;
      let payload = Option.get (chop_prefix ~prefix:"bind: " l) in
      (match split_str " = " payload with
      | [ name; cls ] when name <> "" ->
        (match !binds with
        | (prev, _) :: _ when String.compare prev name >= 0 ->
          fail ln "bindings must be sorted by variable name"
        | _ -> ());
        binds := (name, lat.Lattice.to_string (element ln cls)) :: !binds
      | _ -> fail ln "expected \"bind: <variable> = <class>\"");
      collect_binds ()
    | _ -> ()
  in
  collect_binds ();
  let binds = List.rev !binds in
  let ln, l = next "summary count" in
  let declared =
    match chop_prefix ~prefix:"summaries: " l with
    | Some n -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> n
      | _ -> fail ln "malformed summary count")
    | None -> fail ln "expected \"summaries: <count>\""
  in
  let summaries = List.init declared (fun _ -> parse_summary_block element next) in
  let ln, l = next "main marker" in
  let has_main =
    match chop_prefix ~prefix:"main: " l with
    | Some "1" -> true
    | Some "0" -> false
    | _ -> fail ln "expected \"main: 0\" or \"main: 1\""
  in
  let main_cert =
    if not has_main then begin
      (match peek () with
      | Some l -> fail (!pos + 1) (Printf.sprintf "trailing data after certificate: %S" l)
      | None -> ());
      None
    end
    else begin
      let first = !pos in
      if first >= Array.length lines then
        fail (!pos + 1) "expected an embedded version-1 certificate after \"main: 1\"";
      let rest =
        String.concat "\n"
          (Array.to_list (Array.sub lines first (Array.length lines - first)))
        ^ "\n"
      in
      match Cert.parse rest with
      | Ok c -> Some c
      | Error e ->
        fail (first + e.line)
          ("embedded main certificate: " ^ Fmt.str "%a" Cert.pp_parse_error e)
    end
  in
  { linked_digest = digest; lattice = lat; binds; summaries; main_cert }

let parse text =
  try Ok (parse_exn text) with
  | Fail e -> Error e
  | exn -> Error { line = 0; reason = "internal error: " ^ Printexc.to_string exn }

let summary_of_line line =
  let lines = String.split_on_char '\t' line in
  let remaining = ref lines in
  let next what =
    match !remaining with
    | l :: rest ->
      remaining := rest;
      (0, l)
    | [] -> fail 0 ("unexpected end of summary line: expected " ^ what)
  in
  (* The single-line form is self-contained: class names are kept as
     strings and validated by the consumer against its lattice. *)
  let element _ln cls = cls in
  try
    let s = parse_summary_block element next in
    match !remaining with
    | [] -> Ok s
    | l :: _ -> Error (Printf.sprintf "trailing summary data: %S" l)
  with
  | Fail e -> Error e.reason
  | exn -> Error ("internal error: " ^ Printexc.to_string exn)

let sniff_version text =
  match String.index_opt text '\n' with
  | None -> None
  | Some i -> (
    let first = String.sub text 0 i in
    match chop_prefix ~prefix:"ifc-cert " first with
    | Some v -> int_of_string_opt v
    | None -> None)

(* ------------------------------------------------------------------ *)
(* Checking *)

type failure = Checker.failure = { path : string; rule : string; reason : string }

(* The binding domain a linked certificate must cover: every variable of
   every body plus every interface name (an export may be unused and
   still needs its class on record for bound checks). *)
let bind_domain (l : Ast.linked) =
  let of_module (m : Ast.module_unit) =
    let iface_names =
      List.map (fun (e : Ast.iface_entry) -> e.iv_name) m.iface.provides
      @ List.map (fun (e : Ast.iface_entry) -> e.iv_name) m.iface.requires
    in
    Sset.union (Vars.all_vars m.m_body) (Sset.of_list iface_names)
  in
  let modules =
    List.fold_left (fun acc m -> Sset.union acc (of_module m)) Sset.empty l.modules
  in
  match l.main with
  | None -> modules
  | Some p -> Sset.union modules (Vars.all_vars p.body)

let check ?(components = []) (c : t) (l : Ast.linked) =
  let failures = ref [] in
  let add path rule reason = failures := { path; rule; reason } :: !failures in
  let lat = c.lattice in
  let element cls = lat.Lattice.of_string cls in
  let cls_of path y =
    match List.assoc_opt y c.binds with
    | Some s -> (
      match element s with
      | Ok v -> Some v
      | Error _ ->
        add path "binding" (Printf.sprintf "class of %s does not parse" y);
        None)
    | None ->
      add path "binding" (Printf.sprintf "no recorded class for %s" y);
      None
  in
  (* Unit digest. *)
  if not (String.equal (linked_digest l) c.linked_digest) then
    add "program" "digest" "certificate was issued for a different linked unit";
  (* Binding domain and class validity. *)
  let expected = bind_domain l in
  let recorded = Sset.of_list (List.map fst c.binds) in
  Sset.iter
    (fun v ->
      if not (Sset.mem v recorded) then
        add "binding" "coverage" (Printf.sprintf "variable %s has no recorded class" v))
    expected;
  Sset.iter
    (fun v ->
      if not (Sset.mem v expected) then
        add "binding" "coverage"
          (Printf.sprintf "recorded class for %s, which the unit does not mention" v))
    recorded;
  (* Summary nodes, one per module in order. *)
  let n_sum = List.length c.summaries and n_mod = List.length l.modules in
  if n_sum <> n_mod then
    add "program" "summaries"
      (Printf.sprintf "certificate carries %d summaries for %d modules" n_sum n_mod);
  let iface_entries entries =
    List.map (fun (e : Ast.iface_entry) -> (e.iv_name, e.iv_class)) entries
  in
  let rec pair ms ss =
    match (ms, ss) with
    | m :: ms', s :: ss' -> (m, s) :: pair ms' ss'
    | _ -> []
  in
  let paired = pair l.modules c.summaries in
  List.iter
    (fun ((m : Ast.module_unit), (s : summary)) ->
      let path = "summary " ^ s.m_name in
      if not (String.equal m.iface.m_name s.m_name) then
        add path "name"
          (Printf.sprintf "summary names %s but the unit's module is %s" s.m_name
             m.iface.m_name);
      if not (String.equal (module_digest m) s.body_digest) then
        add path "digest" "summary was issued for a different module body";
      if s.provides <> iface_entries m.iface.provides then
        add path "provides" "recorded provides clause differs from the unit's";
      if s.requires <> iface_entries m.iface.requires then
        add path "requires" "recorded requires clause differs from the unit's";
      if not s.locals_ok then
        add path "locals" "module's concrete internal checks failed at summary time";
      if not s.exports_ok then
        add path "bounds" "module's export classes violate its interface bounds";
      (* Exports: one per provides entry, class consistent with the
         recorded binding, bound re-evaluated here. *)
      if List.map fst s.exports <> List.map fst s.provides then
        add path "exports" "exports do not list exactly the provided names"
      else
        List.iter2
          (fun (x, cls) (_, bound) ->
            (match List.assoc_opt x c.binds with
            | Some b when String.equal b cls -> ()
            | Some b ->
              add path "exports"
                (Printf.sprintf "export %s recorded at %s but bound at %s" x cls b)
            | None ->
              add path "exports" (Printf.sprintf "export %s missing from binding" x));
            match (element cls, element bound) with
            | Ok cv, Ok bv ->
              if not (lat.Lattice.leq cv bv) then
                add path "bounds"
                  (Printf.sprintf "export %s has class %s above its bound %s" x cls
                     bound)
            | _ ->
              add path "bounds" (Printf.sprintf "export %s has an unknown class" x))
          s.exports s.provides;
      (* Residual constraints, re-evaluated under the recorded binding. *)
      List.iter
        (fun constr ->
          let ok =
            match constr with
            | Upper (y, k) -> (
              match (cls_of path y, element k) with
              | Some cy, Ok kv -> lat.Lattice.leq cy kv
              | _ -> false)
            | Lower (k, y) -> (
              match (cls_of path y, element k) with
              | Some cy, Ok kv -> lat.Lattice.leq kv cy
              | _ -> false)
            | Rel (y, z) -> (
              match (cls_of path y, cls_of path z) with
              | Some cy, Some cz -> lat.Lattice.leq cy cz
              | _ -> false)
          in
          if not ok then
            add path "constraint"
              (Printf.sprintf "residual constraint %s does not hold"
                 (render_constr constr)))
        s.constraints)
    paired;
  (* The link step: top-level sequential composition over summary
     mod/flow, with the main program's mod/flow computed directly (the
     checker re-walks main — never a module body). *)
  let binding =
    let resolved =
      List.filter_map
        (fun (v, cls) ->
          match element cls with Ok c -> Some (v, c) | Error _ -> None)
        c.binds
    in
    Binding.make lat resolved
  in
  let resolve_smod path (m : smod) =
    let floor = match element m.floor with Ok v -> Some v | Error _ -> None in
    let parts =
      floor :: List.map (fun y -> cls_of path y) m.under
    in
    if List.exists Option.is_none parts then None
    else Some (Lattice.meets lat (List.filter_map Fun.id parts))
  in
  let resolve_sflow path = function
    | F_nil -> Some Extended.Nil
    | F_sym { base; over } ->
      let base = match element base with Ok v -> Some v | Error _ -> None in
      let parts = base :: List.map (fun y -> cls_of path y) over in
      if List.exists Option.is_none parts then None
      else Some (Extended.El (Lattice.joins lat (List.filter_map Fun.id parts)))
  in
  if n_sum = n_mod then begin
    let items =
      List.map
        (fun (s : summary) ->
          let path = "summary " ^ s.m_name in
          (s.m_name, resolve_smod path s.smod, resolve_sflow path s.sflow))
        c.summaries
      @
      match l.main with
      | None -> []
      | Some p ->
        let r = Cfm.analyze binding p.Ast.body in
        [ ("main", Some r.Cfm.mod_, Some r.Cfm.flow) ]
    in
    let flow_join f1 f2 =
      match (f1, f2) with
      | Extended.Nil, f | f, Extended.Nil -> f
      | Extended.El a, Extended.El b -> Extended.El (lat.Lattice.join a b)
    in
    let _, _ =
      List.fold_left
        (fun (i, prefix) (name, mod_, flow) ->
          (match (mod_, prefix) with
          | Some m, Extended.El f when i > 0 ->
            if not (lat.Lattice.leq f m) then
              add (Printf.sprintf "link %d" i) "composition"
                (Printf.sprintf
                   "prefix flow does not settle below mod of %s in the linked \
                    sequence"
                   name)
          | _ -> ());
          let prefix =
            match flow with Some f -> flow_join prefix f | None -> prefix
          in
          (i + 1, prefix))
        (0, Extended.Nil) items
    in
    ()
  end;
  (* The embedded main certificate. *)
  (match (l.main, c.main_cert) with
  | None, None -> ()
  | None, Some _ -> add "main" "presence" "certificate embeds a main proof but the unit has no main program"
  | Some _, None -> add "main" "presence" "unit has a main program but the certificate embeds no proof"
  | Some _, Some cert -> (
    if not (String.equal (Spec.to_text cert.Cert.lattice) (Spec.to_text lat)) then
      add "main" "lattice" "embedded certificate uses a different lattice";
    List.iter
      (fun (v, cls) ->
        match List.assoc_opt v c.binds with
        | Some b when String.equal b cls -> ()
        | Some b ->
          add "main" "binding"
            (Printf.sprintf "embedded certificate binds %s = %s but the unit binds %s"
               v cls b)
        | None ->
          add "main" "binding"
            (Printf.sprintf "embedded certificate binds %s, unknown to the unit" v))
      cert.Cert.binds;
    match main_program ~binds:c.binds l with
    | None -> ()
    | Some mp -> (
      match Checker.check cert mp with
      | Ok () -> ()
      | Error fs ->
        List.iter (fun (f : failure) -> add ("main/" ^ f.path) f.rule f.reason) fs)));
  (* Component certificates: each must parse, anchor to a summary by
     digest, and fully re-check against that module's import-closed
     body. *)
  List.iteri
    (fun i text ->
      let path = Printf.sprintf "component %d" i in
      match Cert.parse text with
      | Error e ->
        add path "parse" (Fmt.str "%a" Cert.pp_parse_error e)
      | Ok cert -> (
        let d = Digest.to_hex (Digest.string text) in
        let owner =
          List.find_opt
            (fun ((_ : Ast.module_unit), (s : summary)) ->
              match s.cert_digest with Some cd -> String.equal cd d | None -> false)
            paired
        in
        match owner with
        | None ->
          add path "anchor" "no summary records this component certificate's digest"
        | Some (m, s) -> (
          match Checker.check cert (closed_program m) with
          | Ok () -> ()
          | Error fs ->
            List.iter
              (fun (f : failure) ->
                add
                  (Printf.sprintf "component %s/%s" s.m_name f.path)
                  f.rule f.reason)
              fs)))
    components;
  match List.rev !failures with [] -> Ok () | fs -> Error fs
