(** Proof certificates: a versioned, canonical, digest-stamped
    serialization of flow-proof derivations.

    A certificate carries everything an independent checker needs to
    re-validate a proof without re-deriving it: the digest of the program
    text it certifies, the classification scheme (as a {!Ifc_lattice.Spec}
    text), the static binding of every program variable, and — for every
    node of the derivation, in preorder — the applied Figure 1 rule and the
    node's pre- and post-assertions. Statements are {e not} serialized; the
    checker walks the certificate against the parsed program, so a
    certificate cannot smuggle in a different program than the one it is
    stamped for.

    Emission is canonical: class expressions are rendered from their
    {!Ifc_logic.Cexpr.normalize} normal form, assertion atoms are sorted
    and deduplicated, and bindings are sorted by name. Re-emitting a parsed
    certificate therefore reproduces the canonical bytes, and emitting the
    same proof twice yields byte-identical output. *)

type kind =
  | K_assign
  | K_wait
  | K_signal
  | K_send
  | K_recv
  | K_skip
  | K_alternation
  | K_iteration
  | K_composition
  | K_concurrency
  | K_consequence

type node = {
  kind : kind;
  pre : string Ifc_logic.Assertion.t;
  post : string Ifc_logic.Assertion.t;
  children : node list;
}

type t = {
  program_digest : string;  (** MD5 hex of the printed program text. *)
  lattice : string Ifc_lattice.Lattice.t;
  binds : (string * string) list;
      (** [variable, class] for every variable of the program body, sorted
          by name. *)
  root : node;
}

type parse_error = { line : int; reason : string }

val version : int
(** The certificate format version this module reads and writes. *)

val rule_name : kind -> string
(** The rule spelling used in the serialized form ([assign], [wait], ...,
    [consequence]). *)

val program_digest : Ifc_lang.Ast.program -> string
(** MD5 hex digest of {!Ifc_lang.Pretty.program_to_string}. Pretty-printing
    before hashing makes the digest insensitive to whitespace and comments
    in the source file. *)

val of_proof :
  binding:string Ifc_core.Binding.t ->
  program:Ifc_lang.Ast.program ->
  string Ifc_logic.Proof.t ->
  t
(** [of_proof ~binding ~program proof] packages [proof] (a derivation for
    [program.body]) as a certificate. The binding is restricted to the
    variables of the program body — exactly the domain of the policy
    invariant the checker re-derives. *)

val to_string : t -> string
(** Canonical text form. Always ends with a newline. *)

val node_count : t -> int

val parse : string -> (t, parse_error) result
(** Strict parser. Accepts exactly the line grammar produced by
    {!to_string} (assertion atom order is the one freedom: atoms may appear
    in any order and re-emission canonicalizes them). Malformed input of
    any kind — wrong version, bad digest syntax, unknown rule or class
    names, arity violations, truncation, trailing garbage — yields a
    structured [Error]; no exception escapes. *)

val pp_parse_error : Format.formatter -> parse_error -> unit
