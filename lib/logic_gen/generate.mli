(** The constructive content of Theorem 1.

    Given a static binding and class constants [l] and [g], build the
    completely invariant flow proof of

    {v {I, local <= l, global <= g} S {I, local <= l, global <= g (+) l (+) flow(S)} v}

    following the appendix's induction: axioms wrapped in consequence
    steps, branch posts unified by weakening, loop invariants seeded with
    [g (+) l (+) e (+) flow(body)].

    The construction is *optimistic*: it never consults [cert(S)]. When
    [S] is not certified w.r.t. the binding, the construction still
    returns a derivation — but one whose consequence entailments are
    false, so {!Check.check} rejects it. The paper's Theorems 1 and 2
    together say exactly that [Check.check (generate b s)] succeeds iff
    [Cfm.certified b s]; the property suite tests this equivalence on
    random programs, which validates both implementations against each
    other. *)

val theorem1 :
  ?l:'a ->
  ?g:'a ->
  'a Ifc_core.Binding.t ->
  Ifc_lang.Ast.stmt ->
  'a Ifc_logic.Proof.t
(** [theorem1 b s] builds the derivation with [l] and [g] defaulting to
    the lattice bottom (for which the theorem's premise
    [l (+) g <= mod(S)] always holds). The root judgment is exactly the
    theorem's, with [flow(S)] taken from {!Ifc_core.Cfm.flow_of}. *)

val invariant_of :
  'a Ifc_core.Binding.t -> Ifc_lang.Ast.stmt -> 'a Ifc_logic.Assertion.t
(** [invariant_of b s] is the policy assertion [I] (Definition 6) over the
    variables of [s] — the [V]-part of every assertion in the generated
    proof. *)
