(** Deciding the existence of completely invariant flow proofs
    (Definition 7, Theorems 1 and 2).

    The paper proves: a completely invariant proof of the policy assertion
    exists for [S] iff [cert(S)]. This module packages the left-to-right
    *search*: build the Theorem-1 candidate derivation and validate it with
    the independent checker. Because generation never consults [cert], the
    equivalence

    {v decide b s  =  Cfm.certified b s v}

    is a non-trivial cross-validation of the mechanism against the logic —
    the reproduction of Theorems 1 and 2 — exercised on random programs by
    the test suite. *)

val decide :
  ?entailer:Ifc_logic.Check.entailer -> 'a Ifc_core.Binding.t -> Ifc_lang.Ast.stmt -> bool
(** [decide b s] is true iff the Theorem-1 derivation at
    [l = g = bottom] (the weakest premise, always satisfying
    [l (+) g <= mod(S)]) passes {!Check.check}. *)

val decide_at :
  ?entailer:Ifc_logic.Check.entailer ->
  l:'a ->
  g:'a ->
  'a Ifc_core.Binding.t ->
  Ifc_lang.Ast.stmt ->
  bool
(** [decide_at ~l ~g b s] is the same at a particular premise [(l, g)];
    Theorem 1 promises success for every [l (+) g <= mod(S)] when [S] is
    certified. *)

val witness :
  'a Ifc_core.Binding.t ->
  Ifc_lang.Ast.stmt ->
  ('a Ifc_logic.Proof.t, Ifc_logic.Check.error list) result
(** [witness b s] returns the checked completely invariant proof, or the
    checker's complaints — which point at exactly the constructs whose CFM
    checks fail. *)
