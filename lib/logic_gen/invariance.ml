(* Existence of completely invariant proofs via generate-then-check. *)

module Binding = Ifc_core.Binding
module Check = Ifc_logic.Check

let decide_at ?entailer ~l ~g binding stmt =
  let lat = Binding.lattice binding in
  let proof = Generate.theorem1 ~l ~g binding stmt in
  Check.valid ?entailer lat proof

let decide ?entailer binding stmt =
  let lat = Binding.lattice binding in
  decide_at ?entailer ~l:lat.Ifc_lattice.Lattice.bottom
    ~g:lat.Ifc_lattice.Lattice.bottom binding stmt

let witness binding stmt =
  let lat = Binding.lattice binding in
  let proof = Generate.theorem1 binding stmt in
  match Check.check lat proof with Ok () -> Ok proof | Error es -> Error es
