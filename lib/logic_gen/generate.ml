(* The Theorem 1 construction: from CFM facts to a completely invariant
   flow proof. *)

module Lattice = Ifc_lattice.Lattice
module Extended = Ifc_lattice.Extended
module Ast = Ifc_lang.Ast
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Assertion = Ifc_logic.Assertion
module Cexpr = Ifc_logic.Cexpr
module Proof = Ifc_logic.Proof

let invariant_of binding stmt =
  let vars = Ifc_support.Sset.elements (Ifc_lang.Vars.all_vars stmt) in
  Assertion.policy binding vars

let theorem1 ?l:l0 ?g:g0 binding stmt =
  let lat = Binding.lattice binding in
  let bot = lat.Lattice.bottom in
  let l0 = Option.value l0 ~default:bot in
  let g0 = Option.value g0 ~default:bot in
  let inv = invariant_of binding stmt in
  let state l g =
    Assertion.of_triple
      { Assertion.v = inv; l = Cexpr.Const l; g = Cexpr.Const g }
  in
  let flow_const s =
    Extended.get ~default:bot (Cfm.flow_of binding s)
  in
  (* Weaken a proof's post to {I, l, g'} (g' must be >= its post bound). *)
  let weaken_post ~l ~g' (p : 'a Proof.t) =
    if Assertion.equal lat p.Proof.post (state l g') then p
    else
      Proof.make ~pre:p.Proof.pre ~stmt:p.Proof.stmt ~post:(state l g')
        (Proof.Consequence p)
  in
  (* Strengthen a proof's pre from {I, l, g_small}. *)
  let strengthen_pre ~pre (p : 'a Proof.t) =
    if Assertion.equal lat p.Proof.pre pre then p
    else Proof.make ~pre ~stmt:p.Proof.stmt ~post:p.Proof.post (Proof.Consequence p)
  in
  (* Returns the derivation of {I,l,g} s {I,l,g_out} and g_out. *)
  let rec gen l g (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Skip ->
      (Proof.make ~pre:(state l g) ~stmt:s ~post:(state l g) Proof.Axiom_skip, g)
    | Ast.Assign (x, e) ->
      let post = state l g in
      let rhs = Cexpr.Join (Cexpr.of_expr lat e, Cexpr.Join (Cexpr.Local, Cexpr.Global)) in
      let sigma sym =
        match sym with
        | Cexpr.S_cls v when String.equal v x -> Some rhs
        | Cexpr.S_cls _ | Cexpr.S_local | Cexpr.S_global -> None
      in
      let axiom =
        Proof.make ~pre:(Assertion.subst sigma post) ~stmt:s ~post Proof.Axiom_assign
      in
      (strengthen_pre ~pre:(state l g) axiom, g)
    | Ast.Declassify (x, _, cls) ->
      let named =
        match lat.Lattice.of_string cls with
        | Ok c -> c
        | Error _ -> lat.Lattice.top
      in
      let post = state l g in
      let rhs =
        Cexpr.Join (Cexpr.Const named, Cexpr.Join (Cexpr.Local, Cexpr.Global))
      in
      let sigma sym =
        match sym with
        | Cexpr.S_cls v when String.equal v x -> Some rhs
        | Cexpr.S_cls _ | Cexpr.S_local | Cexpr.S_global -> None
      in
      let axiom =
        Proof.make ~pre:(Assertion.subst sigma post) ~stmt:s ~post Proof.Axiom_assign
      in
      (strengthen_pre ~pre:(state l g) axiom, g)
    | Ast.Store (a, i, e) ->
      (* Weak update: the array keeps its old class, joined with the
         index, the stored expression and the certification variables. *)
      let post = state l g in
      let written = Cexpr.Join (Cexpr.of_expr lat i, Cexpr.of_expr lat e) in
      let rhs =
        Cexpr.Join
          (Cexpr.Cls a, Cexpr.Join (written, Cexpr.Join (Cexpr.Local, Cexpr.Global)))
      in
      let sigma sym =
        match sym with
        | Cexpr.S_cls v when String.equal v a -> Some rhs
        | Cexpr.S_cls _ | Cexpr.S_local | Cexpr.S_global -> None
      in
      let axiom =
        Proof.make ~pre:(Assertion.subst sigma post) ~stmt:s ~post Proof.Axiom_assign
      in
      (strengthen_pre ~pre:(state l g) axiom, g)
    | Ast.Signal sem ->
      let post = state l g in
      let rhs = Cexpr.Join (Cexpr.Cls sem, Cexpr.Join (Cexpr.Local, Cexpr.Global)) in
      let sigma sym =
        match sym with
        | Cexpr.S_cls v when String.equal v sem -> Some rhs
        | Cexpr.S_cls _ | Cexpr.S_local | Cexpr.S_global -> None
      in
      let axiom =
        Proof.make ~pre:(Assertion.subst sigma post) ~stmt:s ~post Proof.Axiom_signal
      in
      (strengthen_pre ~pre:(state l g) axiom, g)
    | Ast.Send (chan, e) ->
      (* Signal-shaped: the channel absorbs the payload (weak update —
         earlier messages persist) but produces no global flow. *)
      let post = state l g in
      let rhs =
        Cexpr.Join
          ( Cexpr.Cls chan,
            Cexpr.Join (Cexpr.of_expr lat e, Cexpr.Join (Cexpr.Local, Cexpr.Global)) )
      in
      let sigma sym =
        match sym with
        | Cexpr.S_cls v when String.equal v chan -> Some rhs
        | Cexpr.S_cls _ | Cexpr.S_local | Cexpr.S_global -> None
      in
      let axiom =
        Proof.make ~pre:(Assertion.subst sigma post) ~stmt:s ~post Proof.Axiom_send
      in
      (strengthen_pre ~pre:(state l g) axiom, g)
    | Ast.Recv (chan, x) ->
      (* Wait-shaped plus a write: the conditional delay raises the
         global bound by the channel's class, and the delivered message
         lands in [x] (and refreshes the channel's symbol). *)
      let g_out = lat.Lattice.join g (lat.Lattice.join l (Binding.sbind binding chan)) in
      let post = state l g_out in
      let rhs = Cexpr.Join (Cexpr.Cls chan, Cexpr.Join (Cexpr.Local, Cexpr.Global)) in
      let sigma sym =
        match sym with
        | Cexpr.S_cls v when String.equal v chan || String.equal v x -> Some rhs
        | Cexpr.S_global -> Some rhs
        | Cexpr.S_cls _ | Cexpr.S_local -> None
      in
      let axiom =
        Proof.make ~pre:(Assertion.subst sigma post) ~stmt:s ~post Proof.Axiom_recv
      in
      (strengthen_pre ~pre:(state l g) axiom, g_out)
    | Ast.Wait sem ->
      let g_out = lat.Lattice.join g (lat.Lattice.join l (Binding.sbind binding sem)) in
      let post = state l g_out in
      let rhs = Cexpr.Join (Cexpr.Cls sem, Cexpr.Join (Cexpr.Local, Cexpr.Global)) in
      let sigma sym =
        match sym with
        | Cexpr.S_cls v when String.equal v sem -> Some rhs
        | Cexpr.S_global -> Some rhs
        | Cexpr.S_cls _ | Cexpr.S_local -> None
      in
      let axiom =
        Proof.make ~pre:(Assertion.subst sigma post) ~stmt:s ~post Proof.Axiom_wait
      in
      (strengthen_pre ~pre:(state l g) axiom, g_out)
    | Ast.If (cond, s1, s2) ->
      let e_class = Binding.expr_class binding cond in
      let l' = lat.Lattice.join l e_class in
      let p1, g1 = gen l' g s1 in
      let p2, g2 = gen l' g s2 in
      let g' = lat.Lattice.join g1 g2 in
      let p1 = weaken_post ~l:l' ~g' p1 in
      let p2 = weaken_post ~l:l' ~g' p2 in
      ( Proof.make ~pre:(state l g) ~stmt:s ~post:(state l g')
          (Proof.Alternation (p1, p2)),
        g' )
    | Ast.While (cond, body) ->
      let e_class = Binding.expr_class binding cond in
      let l' = lat.Lattice.join l e_class in
      (* The invariant global bound absorbs everything the body can add:
         g (+) l (+) e (+) flow(body). *)
      let g_inv =
        lat.Lattice.join g (lat.Lattice.join l' (flow_const body))
      in
      let pb, _gb = gen l' g_inv body in
      let pb = weaken_post ~l:l' ~g':g_inv pb in
      let while_node =
        Proof.make ~pre:(state l g_inv) ~stmt:s ~post:(state l g_inv)
          (Proof.Iteration pb)
      in
      (strengthen_pre ~pre:(state l g) while_node, g_inv)
    | Ast.Seq stmts ->
      let proofs_rev, g_out =
        List.fold_left
          (fun (acc, g_cur) st ->
            let p, g_next = gen l g_cur st in
            (p :: acc, g_next))
          ([], g) stmts
      in
      ( Proof.make ~pre:(state l g) ~stmt:s ~post:(state l g_out)
          (Proof.Composition (List.rev proofs_rev)),
        g_out )
    | Ast.Cobegin branches ->
      let results = List.map (gen l g) branches in
      let g' = List.fold_left (fun acc (_, gi) -> lat.Lattice.join acc gi) g results in
      let proofs = List.map (fun (p, _) -> weaken_post ~l ~g' p) results in
      ( Proof.make ~pre:(state l g) ~stmt:s ~post:(state l g')
          (Proof.Concurrency proofs),
        g' )
  in
  let proof, _g_out = gen l0 g0 stmt in
  (* Present the root judgment exactly as Theorem 1 states it. *)
  let theorem_g =
    lat.Lattice.join g0 (lat.Lattice.join l0 (flow_const stmt))
  in
  weaken_post ~l:l0 ~g':theorem_g proof
