(* Endpoints, the bounded newline-delimited reader, and the
   per-connection serve loop shared by server and client. *)

(* ------------------------------------------------------------------ *)
(* Endpoints *)

type endpoint = Unix_socket of string | Tcp of string * int

let pp_endpoint ppf = function
  | Unix_socket path -> Fmt.pf ppf "unix:%s" path
  | Tcp (host, port) -> Fmt.pf ppf "tcp:%s:%d" host port

let tcp_of_string s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" s)
  | Some i -> (
    let host = String.sub s 0 i
    and port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p >= 0 && p < 65536 ->
      Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
    | _ -> Error (Printf.sprintf "invalid port in %S" s))

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> Ok addrs.(0)
    | _ | (exception Not_found) ->
      Error (Printf.sprintf "cannot resolve host %S" host))

let sockaddr_of_endpoint = function
  | Unix_socket path -> Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) ->
    Result.map (fun addr -> Unix.ADDR_INET (addr, port)) (resolve_host host)

(* ------------------------------------------------------------------ *)
(* Reading *)

type item = [ `Line of string | `Oversized ]

type reader = {
  fd : Unix.file_descr;
  max_bytes : int;
  chunk : Bytes.t;
  pending : item Queue.t;
  acc : Buffer.t;
  mutable discarding : bool;
  mutable eof : bool;
}

let reader ?(max_bytes = max_int) fd =
  {
    fd;
    max_bytes;
    chunk = Bytes.create 8192;
    pending = Queue.create ();
    acc = Buffer.create 256;
    discarding = false;
    eof = false;
  }

(* Split freshly read bytes into complete lines. A line that outgrows
   [max_bytes] is dropped on the floor byte by byte — the connection
   survives, only the request dies. *)
let feed r n =
  for i = 0 to n - 1 do
    match Bytes.get r.chunk i with
    | '\n' ->
      (if r.discarding then begin
         Queue.push `Oversized r.pending;
         r.discarding <- false
       end
       else begin
         let line = Buffer.contents r.acc in
         let line =
           (* Tolerate CRLF-terminated requests from interactive tools. *)
           if String.length line > 0 && line.[String.length line - 1] = '\r' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         Queue.push (`Line line) r.pending
       end);
      Buffer.clear r.acc
    | c when not r.discarding ->
      Buffer.add_char r.acc c;
      if Buffer.length r.acc > r.max_bytes then begin
        Buffer.clear r.acc;
        r.discarding <- true
      end
    | _ -> ()
  done

let rec next_line ?(poll_interval = 0.2) ?(should_stop = fun () -> false) r =
  match Queue.take_opt r.pending with
  | Some (`Line l) -> `Line l
  | Some `Oversized -> `Oversized
  | None ->
    if r.eof then `Eof
    else if should_stop () then `Stop
    else begin
      (match Unix.select [ r.fd ] [] [] poll_interval with
      | [], _, _ -> ()
      | _ -> (
        match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> r.eof <- true
        | n -> feed r n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
          ->
          r.eof <- true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      next_line ~poll_interval ~should_stop r
    end

(* Nonblocking half of the reader, for event loops that multiplex many
   connections on one select: one read attempt feeding the splitter,
   and a non-consuming-wait item pop. The fd must already be in
   nonblocking mode. *)

let feed_fd r =
  if r.eof then `Eof
  else
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 ->
      r.eof <- true;
      `Eof
    | n ->
      feed r n;
      `Read
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> `Blocked
    | exception Unix.Unix_error _ ->
      r.eof <- true;
      `Eof

let pop_item r = Queue.take_opt r.pending

let at_eof r = r.eof

(* ------------------------------------------------------------------ *)
(* Writing *)

let write_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off >= len then true
    else
      match Unix.write fd data off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  try go 0 with Unix.Unix_error _ -> false

(* ------------------------------------------------------------------ *)
(* The serve loop *)

let serve ~limits ~should_stop ~handle fd =
  let r = reader ~max_bytes:limits.Limits.max_request_bytes fd in
  let rec loop () =
    match next_line ~should_stop r with
    | `Eof | `Stop -> ()
    | `Line l -> if write_line fd (handle (`Line l)) then loop ()
    | `Oversized -> if write_line fd (handle `Oversized) then loop ()
  in
  loop ()
