(** A strict JSON parser producing {!Ifc_pipeline.Telemetry.json}.

    The inverse of [Telemetry.json_to_string], hardened for socket
    input: rejects trailing garbage, unescaped control characters, lone
    surrogates, invalid escapes, and nesting deeper than 512 levels (so
    a hostile request cannot overflow the stack). Strings are returned
    as UTF-8 bytes; [\uXXXX] escapes (surrogate pairs included) are
    decoded to UTF-8. Numbers parse to [Int] when integral and in
    native-int range, [Float] otherwise. *)

val parse : string -> (Ifc_pipeline.Telemetry.json, string) result
(** [parse s] parses exactly one JSON value spanning all of [s]. The
    error message carries a byte offset. *)

(** {1 Accessors}

    Shape-tolerant readers used to pick requests apart: each returns
    [None] rather than raising when the shape disagrees. *)

val member : string -> Ifc_pipeline.Telemetry.json -> Ifc_pipeline.Telemetry.json option
(** Field lookup in an [Obj]; [None] on any other constructor. *)

val string_opt : Ifc_pipeline.Telemetry.json -> string option

val int_opt : Ifc_pipeline.Telemetry.json -> int option
(** [Int]s, plus [Float]s that are exact integers. *)

val bool_opt : Ifc_pipeline.Telemetry.json -> bool option

val list_opt : Ifc_pipeline.Telemetry.json -> Ifc_pipeline.Telemetry.json list option

val mem_string : string -> Ifc_pipeline.Telemetry.json -> string option
(** [mem_string name j] is [member] composed with [string_opt]. *)

val mem_int : string -> Ifc_pipeline.Telemetry.json -> int option

val mem_bool : string -> Ifc_pipeline.Telemetry.json -> bool option
