(** Client for the certification daemon.

    One connection, synchronous request/response: every call writes one
    request line and blocks for one response line. Connections are
    cheap, but reusing one across requests is what lets the server's
    shared cache and stats attribute them to one session. *)

type t

val connect : ?retry_for:float -> Conn.endpoint -> (t, string) result
(** [connect ~retry_for endpoint] retries transient failures
    (connection refused, socket file not yet created) for [retry_for]
    seconds (default [0.], one attempt) — the polite way to wait for a
    server that is still starting. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** The raw socket, for callers that pipeline their own writes
    (see {!Loadgen}). Mixing raw writes with {!request} on the same
    connection is the caller's responsibility. *)

val reader : t -> Conn.reader
(** The connection's buffered line reader, paired with {!fd}. *)

val request : t -> string -> (Ifc_pipeline.Telemetry.json, string) result
(** [request t line] is the raw round-trip: send [line], parse the
    response line. [Error] means transport or JSON failure; protocol
    errors come back as [Ok] responses with [ok:false]. *)

val check :
  t ->
  ?id:Ifc_pipeline.Telemetry.json ->
  ?name:string ->
  ?lattice:string ->
  ?binding:string ->
  ?analyses:string list ->
  ?self_check:bool ->
  ?ni_pairs:int ->
  ?ni_max_states:int ->
  ?deadline_ms:int ->
  string ->
  (Ifc_pipeline.Telemetry.json, string) result
(** [check t program] certifies one program text. *)

val cert_emit :
  t ->
  ?id:Ifc_pipeline.Telemetry.json ->
  ?name:string ->
  ?lattice:string ->
  ?binding:string ->
  ?deadline_ms:int ->
  string ->
  (Ifc_pipeline.Telemetry.json, string) result
(** [cert_emit t program] asks the server to emit a proof certificate;
    the response's ["cert"] field carries the certificate text when the
    program is certifiable. Requires protocol version 2. *)

val cert_check :
  t ->
  ?id:Ifc_pipeline.Telemetry.json ->
  ?name:string ->
  ?deadline_ms:int ->
  cert:string ->
  string ->
  (Ifc_pipeline.Telemetry.json, string) result
(** [cert_check t ~cert program] asks the server to validate [cert]
    against [program]; the response carries ["valid"] and, on rejection,
    the first failure. Requires protocol version 2. *)

val lint :
  t ->
  ?id:Ifc_pipeline.Telemetry.json ->
  ?name:string ->
  ?deadline_ms:int ->
  string ->
  (Ifc_pipeline.Telemetry.json, string) result
(** [lint t program] runs the static concurrency analyzer; the
    response's ["report"] object carries the findings, claims, and
    stats. Requires protocol version 3. *)

val stats : t -> (Ifc_pipeline.Telemetry.json, string) result

val ping : t -> (unit, string) result

val with_client :
  ?retry_for:float ->
  Conn.endpoint ->
  (t -> ('a, string) result) ->
  ('a, string) result
(** Connect, run, always close. *)
