(* The certification daemon: multiplexes concurrent client connections
   onto one Ifc_pipeline.Pool and one shared result Cache.

   Threading model: the accept loop runs on the caller of [run]; each
   accepted connection gets a (lightweight, I/O-bound) thread; each
   check request is submitted to the (CPU-bound, domain-backed) worker
   pool and awaited by its connection thread with a polling wait so a
   deadline can fire even while the job is running. Cancellation is
   cooperative: a request abandoned before a worker picks it up is never
   executed at all.

   Shutdown is a drain: [request_stop] (signal-handler safe — it only
   flips an atomic) stops the accept loop; connection loops finish the
   request they are serving, refuse to read another, and exit; the pool
   is then drained and joined, the request log closed, sockets
   unlinked. *)

module J = Ifc_pipeline.Telemetry
module Pool = Ifc_pipeline.Pool
module Cache = Ifc_pipeline.Cache
module Tier = Ifc_pipeline.Tier
module Job = Ifc_pipeline.Job
module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Mls = Ifc_lattice.Mls
module Spec = Ifc_lattice.Spec
module Parser = Ifc_lang.Parser
module Wellformed = Ifc_lang.Wellformed
module Binding = Ifc_core.Binding

type config = {
  endpoints : Conn.endpoint list;
  workers : int;
  shards : int;
  cache_capacity : int;
  limits : Limits.t;
  log : J.sink option;
  store : Ifc_pipeline.Tier.t option;
}

let default_config =
  {
    endpoints = [];
    workers = 1;
    shards = max 1 (Domain.recommended_domain_count ());
    cache_capacity = 4096;
    limits = Limits.default;
    log = None;
    store = None;
  }

type t = {
  config : config;
  pool : Pool.t;
  cache : Job.analysis_result list Cache.t;
  counters : J.counters;
  latency : J.histogram;
  started : J.timer;
  stop : bool Atomic.t;
  drained : bool Atomic.t;
  conns : Limits.gauge;
  listeners : (Unix.file_descr * Conn.endpoint) list;
  tcp_port : int option;
  threads_mutex : Mutex.t;
  threads : (int, Thread.t) Hashtbl.t;
  finished : (int, unit) Hashtbl.t;
  conn_seq : int Atomic.t;
  log : J.sink;
  stall_ms : int;
  mutable shard_rts : Shard.t list;
}

(* ------------------------------------------------------------------ *)
(* Creation *)

let bind_endpoint ep =
  match Conn.sockaddr_of_endpoint ep with
  | Error msg -> Error msg
  | Ok addr -> (
    let domain = Unix.domain_of_sockaddr addr in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    try
      (match ep with
      | Conn.Unix_socket path ->
        (* A stale socket file from a dead server would fail the bind. *)
        if Sys.file_exists path then Unix.unlink path
      | Conn.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
      Unix.bind fd addr;
      (* A deep backlog: under load tests thousands of clients connect
         in a burst before the acceptor gets scheduled. *)
      Unix.listen fd 1024;
      Ok fd
    with
    | Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with _ -> ());
      Error
        (Fmt.str "cannot bind %a: %s" Conn.pp_endpoint ep (Unix.error_message err))
    | Sys_error msg ->
      (try Unix.close fd with _ -> ());
      Error (Fmt.str "cannot bind %a: %s" Conn.pp_endpoint ep msg))

let create config =
  if config.endpoints = [] then Error "server needs at least one endpoint"
  else if config.workers < 1 then Error "server needs at least one worker"
  else if config.shards < 0 then Error "server needs a non-negative shard count"
  else
    match
      Limits.check_fd_budget ~what:"max connections"
        config.limits.Limits.max_connections
    with
    | Error msg -> Error msg
    | Ok () ->
  begin
    (* A dead client must surface as EPIPE on write, not kill the
       process. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let rec bind_all acc = function
      | [] -> Ok (List.rev acc)
      | ep :: rest -> (
        match bind_endpoint ep with
        | Ok fd -> bind_all ((fd, ep) :: acc) rest
        | Error msg ->
          List.iter (fun (fd, _) -> try Unix.close fd with _ -> ()) acc;
          Error msg)
    in
    match bind_all [] config.endpoints with
    | Error msg -> Error msg
    | Ok listeners ->
      let tcp_port =
        List.find_map
          (fun (fd, ep) ->
            match ep with
            | Conn.Tcp _ -> (
              match Unix.getsockname fd with
              | Unix.ADDR_INET (_, port) -> Some port
              | _ -> None)
            | Conn.Unix_socket _ -> None)
          listeners
      in
      (* Deterministic fault injection for the adversarial tests: when
         IFC_SERVE_PLANT_STALL carries a number of milliseconds, any
         pooled job whose request name starts with "stall" sleeps that
         long on its worker before running (and re-checks cancellation
         after the sleep), making deadline and backpressure behavior
         reproducible without a slow program. *)
      let stall_ms =
        match Sys.getenv_opt "IFC_SERVE_PLANT_STALL" with
        | Some s -> ( match int_of_string_opt (String.trim s) with
          | Some ms when ms > 0 -> ms
          | _ -> 0)
        | None -> 0
      in
      let t =
        {
          config;
          pool = Pool.create ~workers:config.workers ();
          cache =
            Cache.create
              ~shards:(max 1 config.shards)
              ~capacity:config.cache_capacity ();
          counters = J.counters ();
          latency = J.histogram ();
          started = J.start ();
          stop = Atomic.make false;
          drained = Atomic.make false;
          conns = Limits.gauge ();
          listeners;
          tcp_port;
          threads_mutex = Mutex.create ();
          threads = Hashtbl.create 16;
          finished = Hashtbl.create 16;
          conn_seq = Atomic.make 0;
          log = Option.value ~default:(J.null_sink ()) config.log;
          stall_ms;
          shard_rts = [];
        }
      in
      (* Warm start: resurrect the previous session's hot set so a
         restarted daemon answers its old corpus from memory. *)
      (match config.store with
      | Some tier -> J.add t.counters "store.preloaded" (tier.Tier.preload t.cache)
      | None -> ());
      Ok t
  end

let port t = t.tcp_port

let request_stop t = Atomic.set t.stop true

let stopped t = Atomic.get t.stop

(* ------------------------------------------------------------------ *)
(* Request execution *)

let load_lattice text =
  match text with
  | "two" -> Ok (Lattice.stringify Chain.two)
  | "three" -> Ok (Lattice.stringify Chain.three)
  | "four" -> Ok (Lattice.stringify Chain.four)
  | "mls" -> Ok (Lattice.stringify Mls.standard)
  | text when String.contains text '\n' -> Spec.parse text
  | other ->
    Error
      (Printf.sprintf
         "unknown lattice %S (use two, three, four, mls, or inline spec text)"
         other)

let parse_program_text src =
  match Parser.parse_program src with
  | Error e -> Error (Fmt.str "program: %a" Parser.pp_error e)
  | Ok p -> (
    match Wellformed.errors p with
    | [] -> Ok p
    | errs ->
      Error (Fmt.str "program: %a" (Fmt.list ~sep:Fmt.comma Wellformed.pp_issue) errs))

let build_spec (req : Protocol.check_request) =
  let ( let* ) = Result.bind in
  let* lat = load_lattice req.Protocol.lattice in
  let* program = parse_program_text req.Protocol.program in
  let* binding =
    match req.Protocol.binding with
    | Some text -> Binding.of_spec lat text
    | None -> Binding.of_program lat program
  in
  let* analyses =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* a =
          Job.analysis_of_string ~ni_pairs:req.Protocol.ni_pairs
            ~ni_max_states:req.Protocol.ni_max_states name
        in
        Ok (a :: acc))
      (Ok []) req.Protocol.analyses
    |> Result.map List.rev
  in
  Ok
    (Job.make ~id:0 ~name:req.Protocol.name ~lattice:lat ~binding ~analyses
       ~self_check:req.Protocol.self_check program)

let check_fields (r : Job.result) =
  let tail =
    match r.Job.outcome with
    | Error msg -> [ ("error", J.String msg) ]
    | Ok analyses ->
      [
        ( "analyses",
          J.List
            (List.map
               (fun (ar : Job.analysis_result) ->
                 J.Obj
                   [
                     ("analysis", J.String ar.Job.analysis);
                     ("verdict", J.Bool ar.Job.verdict);
                     ("checks", J.Int ar.Job.checks);
                     ("duration_ns", J.Int (Int64.to_int ar.Job.duration_ns));
                   ])
               analyses) );
      ]
  in
  [
    ("verdict", J.String (Job.verdict_string r));
    ("cache", J.String (if r.Job.from_cache then "hit" else "miss"));
    ("digest", J.String r.Job.job_digest);
    ("duration_ns", J.Int (Int64.to_int r.Job.duration_ns));
  ]
  @ tail

(* Accounting that must run exactly once per request, at the moment its
   response is final: the latency observation and the request-log
   event. Immediate responses finalize during classification; pooled
   responses finalize on the worker (completion), in the timeout
   closure (deadline), or in the refusal closure (backpressure) —
   whichever renders the response. *)
let finalize t ~timer ~op_name ~name outcome response =
  let duration_ns = J.elapsed_ns timer in
  J.observe t.latency duration_ns;
  let log_fields =
    [ ("event", J.String "request"); ("op", J.String op_name) ]
    @ (match name with Some n -> [ ("name", J.String n) ] | None -> [])
    @ (match outcome with
      | `Ok -> [ ("ok", J.Bool true) ]
      | `Error code -> [ ("ok", J.Bool false); ("code", J.String code) ]
      | `Verdict r ->
        [
          ("ok", J.Bool true);
          ("verdict", J.String (Job.verdict_string r));
          ("cache", J.String (if r.Job.from_cache then "hit" else "miss"));
        ])
    @ [ ("duration_ns", J.Int (Int64.to_int duration_ns)) ]
  in
  J.emit t.log log_fields;
  response

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Classify one job spec against the shared cache and worker pool.
   Cache hits, store hits, and refusals answer immediately; a miss
   becomes a pooled job the connection engine races against its
   deadline. [fields] renders the success response body; check and
   cert/emit share this path (and therefore cache entries are keyed
   per-analysis-set: a check job and a cert job for the same program
   have distinct digests). *)
let classify_job t ~timer ~v id ~op_name ~fields ~job_name ~deadline spec =
  let digest = Job.digest spec in
  let name = Some job_name in
  let respond_result r =
    let response = Protocol.ok_response ~v ~id ~op:op_name (fields r) in
    finalize t ~timer ~op_name ~name (`Verdict r) response
  in
  let respond_cached cached =
    let cache_timer = J.start () in
    Dispatch.Immediate
      (respond_result
         {
           Job.job_id = 0;
           job_name;
           job_digest = digest;
           outcome = Ok cached;
           duration_ns = J.elapsed_ns cache_timer;
           from_cache = true;
         })
  in
  (* Memory first, then the persistent tier (validated on read; a disk
     hit is promoted so the next request hits memory), then compute. *)
  let consult_store () =
    match t.config.store with
    | None -> None
    | Some tier -> (
      match tier.Tier.find spec ~digest with
      | None ->
        J.incr t.counters "store.disk_miss";
        None
      | Some results ->
        J.incr t.counters "store.disk_hit";
        Cache.add t.cache digest results;
        Some results)
  in
  match Cache.find t.cache digest with
  | Some cached -> respond_cached cached
  | None ->
  match consult_store () with
  | Some cached -> respond_cached cached
  | None ->
    let limits = t.config.limits in
    if limits.Limits.max_pending > 0 && Pool.pending t.pool >= limits.Limits.max_pending
    then begin
      J.incr t.counters "errors";
      J.incr t.counters "error.overloaded";
      Dispatch.Immediate
        (finalize t ~timer ~op_name ~name (`Error "overloaded")
           (Protocol.error_response ~v ~id Protocol.Overloaded
              (Printf.sprintf "certification queue is full (%d pending jobs)"
                 limits.Limits.max_pending)))
    end
    else begin
      let deadline_ms =
        match deadline with
        | Some ms -> Some ms
        | None ->
          if limits.Limits.default_deadline_ms > 0 then
            Some limits.Limits.default_deadline_ms
          else None
      in
      let deadline_ns =
        Option.map
          (fun ms ->
            Int64.add (J.now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L))
          deadline_ms
      in
      let cancelled = Atomic.make false in
      (* First of {completion, timeout} wins the right to render and
         account the response; the loser stands down. *)
      let finalized = Atomic.make false in
      let submit ~complete =
        let task () =
          if Atomic.get cancelled then J.incr t.counters "jobs.cancelled"
          else begin
            if t.stall_ms > 0 && has_prefix ~prefix:"stall" job_name then
              Unix.sleepf (float_of_int t.stall_ms /. 1000.);
            if Atomic.get cancelled then J.incr t.counters "jobs.cancelled"
            else begin
              let r = Job.run ~digest spec in
              (match r.Job.outcome with
              | Ok analyses ->
                Cache.add t.cache digest analyses;
                (match t.config.store with
                | Some tier -> tier.Tier.store ~digest analyses
                | None -> ())
              | Error _ -> ());
              if Atomic.compare_and_set finalized false true then
                complete (respond_result r)
            end
          end
        in
        match Pool.submit t.pool task with
        | () -> ()
        | exception Invalid_argument _ ->
          (* The pool is already draining; refuse politely. *)
          if Atomic.compare_and_set finalized false true then begin
            J.incr t.counters "errors";
            J.incr t.counters "error.overloaded";
            complete
              (finalize t ~timer ~op_name ~name (`Error "overloaded")
                 (Protocol.error_response ~v ~id Protocol.Overloaded
                    "server is shutting down"))
          end
      in
      let timeout () =
        Atomic.set cancelled true;
        if Atomic.compare_and_set finalized false true then begin
          J.incr t.counters "errors";
          J.incr t.counters "error.timeout";
          Some
            (finalize t ~timer ~op_name ~name (`Error "timeout")
               (Protocol.error_response ~v ~id Protocol.Timeout
                  (Printf.sprintf "request exceeded its %d ms deadline"
                     (Option.value ~default:0 deadline_ms))))
        end
        else None
      in
      let refuse_inflight () =
        J.incr t.counters "errors";
        J.incr t.counters "error.overloaded";
        finalize t ~timer ~op_name ~name (`Error "overloaded")
          (Protocol.error_response ~v ~id Protocol.Overloaded
             (Printf.sprintf "connection is at its %d in-flight request limit"
                limits.Limits.max_inflight))
      in
      Dispatch.Pooled
        { Dispatch.deadline_ns; cancelled; submit; timeout; refuse_inflight }
    end

(* Lint responses are check responses with the findings report spliced
   in from the job artifact, so the client sees structured findings, not
   an opaque string. *)
let lint_fields (r : Job.result) =
  let report =
    match r.Job.outcome with
    | Error _ -> []
    | Ok analyses -> (
      match List.find_opt (fun ar -> ar.Job.artifact <> None) analyses with
      | Some { Job.artifact = Some text; _ } -> (
        match Jsonx.parse text with
        | Ok json -> [ ("report", json) ]
        | Error _ -> [])
      | _ -> [])
  in
  check_fields r @ report

let bad_request t ~timer ~v id ~op_name ~name msg =
  J.incr t.counters "errors";
  J.incr t.counters "error.bad_request";
  Dispatch.Immediate
    (finalize t ~timer ~op_name ~name (`Error "bad_request")
       (Protocol.error_response ~v ~id Protocol.Bad_request msg))

let classify_lint t ~timer ~v id (req : Protocol.lint_request) =
  let name = Some req.Protocol.lint_name in
  match parse_program_text req.Protocol.lint_program with
  | Error msg -> bad_request t ~timer ~v id ~op_name:"lint" ~name msg
  | Ok program -> (
    (* Lint only reads the program; the spec's lattice and binding are
       fixed placeholders so equal programs share a cache entry. *)
    let lat = Lattice.stringify Chain.two in
    match Binding.of_program lat program with
    | Error msg -> bad_request t ~timer ~v id ~op_name:"lint" ~name msg
    | Ok binding ->
      let spec =
        Job.make ~id:0 ~name:req.Protocol.lint_name ~lattice:lat ~binding
          ~analyses:[ Job.Lint ] program
      in
      classify_job t ~timer ~v id ~op_name:"lint" ~fields:lint_fields
        ~job_name:req.Protocol.lint_name
        ~deadline:req.Protocol.lint_deadline_ms spec)

let classify_check t ~timer ~v id (req : Protocol.check_request) =
  match build_spec req with
  | Error msg ->
    bad_request t ~timer ~v id ~op_name:"check"
      ~name:(Some req.Protocol.name) msg
  | Ok spec ->
    classify_job t ~timer ~v id ~op_name:"check" ~fields:check_fields
      ~job_name:req.Protocol.name ~deadline:req.Protocol.deadline_ms spec

(* cert/emit responses are check responses plus the certificate text
   (when one was produced) so a client can persist and later re-check
   it. *)
let cert_emit_fields (r : Job.result) =
  let cert =
    match r.Job.outcome with
    | Error _ -> []
    | Ok analyses -> (
      match
        List.find_opt (fun ar -> ar.Job.artifact <> None) analyses
      with
      | Some { Job.artifact = Some text; _ } -> [ ("cert", J.String text) ]
      | _ -> [])
  in
  (("action", J.String "emit") :: check_fields r) @ cert

let classify_cert t ~timer ~v id (req : Protocol.cert_request) =
  let name = Some req.Protocol.cert_name in
  match req.Protocol.action with
  | Protocol.Cert_emit -> (
    let ( let* ) = Result.bind in
    let spec =
      let* lat = load_lattice req.Protocol.cert_lattice in
      let* program = parse_program_text req.Protocol.cert_program in
      let* binding =
        match req.Protocol.cert_binding with
        | Some text -> Binding.of_spec lat text
        | None -> Binding.of_program lat program
      in
      Ok
        (Job.make ~id:0 ~name:req.Protocol.cert_name ~lattice:lat ~binding
           ~analyses:[ Job.Cert ] program)
    in
    match spec with
    | Error msg -> bad_request t ~timer ~v id ~op_name:"cert" ~name msg
    | Ok spec ->
      classify_job t ~timer ~v id ~op_name:"cert" ~fields:cert_emit_fields
        ~job_name:req.Protocol.cert_name ~deadline:req.Protocol.cert_deadline_ms
        spec)
  | Protocol.Cert_check cert_text -> (
    (* Validation runs inline on the classifying thread: the trusted
       checker is cheap (no proof construction) and carries no cacheable
       artifact. *)
    match parse_program_text req.Protocol.cert_program with
    | Error msg -> bad_request t ~timer ~v id ~op_name:"cert" ~name msg
    | Ok program -> (
      match Ifc_cert.Cert.parse cert_text with
      | Error e ->
        bad_request t ~timer ~v id ~op_name:"cert" ~name
          (Fmt.str "certificate: %a" Ifc_cert.Cert.pp_parse_error e)
      | Ok cert -> (
        let ok fields =
          Dispatch.Immediate
            (finalize t ~timer ~op_name:"cert" ~name `Ok
               (Protocol.ok_response ~v ~id ~op:"cert" fields))
        in
        match Ifc_cert.Checker.check cert program with
        | Ok () ->
          ok
            [
              ("action", J.String "check");
              ("valid", J.Bool true);
              ("nodes", J.Int (Ifc_cert.Cert.node_count cert));
            ]
        | Error failures ->
          let first = List.hd failures in
          ok
            [
              ("action", J.String "check");
              ("valid", J.Bool false);
              ("failures", J.Int (List.length failures));
              ( "first",
                J.Obj
                  [
                    ("path", J.String first.Ifc_cert.Checker.path);
                    ("rule", J.String first.Ifc_cert.Checker.rule);
                    ("reason", J.String first.Ifc_cert.Checker.reason);
                  ] );
            ])))

(* modsys: the version-5 compositional surface. [summary] and [refine]
   run inline — both are interface-sized, no proof construction — while
   [link] is pooled through the same cache/store path as check and cert,
   keyed by the linked digest (which covers the interface bounds the
   elaboration alone does not). *)
let parse_linked_text src =
  match Parser.parse_linked src with
  | Error e -> Error (Fmt.str "program: %a" Parser.pp_error e)
  | Ok l -> (
    match Wellformed.linked_errors l with
    | [] -> Ok l
    | errs ->
      Error (Fmt.str "program: %a" (Fmt.list ~sep:Fmt.comma Wellformed.pp_issue) errs))

let modsys_link_fields (r : Job.result) =
  let cert =
    match r.Job.outcome with
    | Error _ -> []
    | Ok analyses -> (
      match List.find_opt (fun ar -> ar.Job.artifact <> None) analyses with
      | Some { Job.artifact = Some text; _ } -> [ ("cert", J.String text) ]
      | _ -> [])
  in
  (("action", J.String "link") :: check_fields r) @ cert

let classify_modsys t ~timer ~v id (req : Protocol.modsys_request) =
  let name = Some req.Protocol.mod_name in
  let bad msg = bad_request t ~timer ~v id ~op_name:"modsys" ~name msg in
  let ok fields =
    Dispatch.Immediate
      (finalize t ~timer ~op_name:"modsys" ~name `Ok
         (Protocol.ok_response ~v ~id ~op:"modsys" fields))
  in
  let parsed =
    let ( let* ) = Result.bind in
    let* lat = load_lattice req.Protocol.mod_lattice in
    let* l = parse_linked_text req.Protocol.mod_program in
    Ok (lat, l)
  in
  match parsed with
  | Error msg -> bad msg
  | Ok (lat, l) -> (
    match req.Protocol.mod_action with
    | Protocol.Mod_summary -> (
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (m : Ifc_lang.Ast.module_unit) :: rest -> (
          match Ifc_modsys.Summary.summarize ~lattice:lat m with
          | Error e ->
            Error (Printf.sprintf "module %s: %s" m.Ifc_lang.Ast.iface.Ifc_lang.Ast.m_name e)
          | Ok s -> go (s :: acc) rest)
      in
      match go [] l.Ifc_lang.Ast.modules with
      | Error msg -> bad msg
      | Ok sums ->
        ok
          [
            ("action", J.String "summary");
            ( "modules",
              J.List
                (List.map
                   (fun (s : Ifc_cert.Linked.summary) ->
                     J.Obj
                       [
                         ("name", J.String s.Ifc_cert.Linked.m_name);
                         ("digest", J.String s.Ifc_cert.Linked.body_digest);
                         ("locals_ok", J.Bool s.Ifc_cert.Linked.locals_ok);
                         ("exports_ok", J.Bool s.Ifc_cert.Linked.exports_ok);
                         ( "constraints",
                           J.Int (List.length s.Ifc_cert.Linked.constraints) );
                         ( "summary",
                           J.String
                             (String.concat "\n"
                                (Ifc_cert.Linked.summary_to_lines s)) );
                       ])
                   sums) );
          ])
    | Protocol.Mod_refine replacement_src -> (
      match l.Ifc_lang.Ast.modules with
      | [] -> bad "refine needs a base module in \"program\""
      | base :: _ -> (
        (* The replacement is a stand-alone module: parse it as a unit
           but skip the dangling-import check — its requires are
           resolved by whatever unit it is eventually linked into. *)
        match Parser.parse_linked replacement_src with
        | Error e -> bad (Fmt.str "replacement program: %a" Parser.pp_error e)
        | Ok { Ifc_lang.Ast.modules = repl :: _; _ } -> (
          match Ifc_modsys.Refine.check_against ~lattice:lat ~base repl with
          | Error msg -> bad msg
          | Ok report ->
            ok
              [
                ("action", J.String "refine");
                ("valid", J.Bool report.Ifc_modsys.Refine.ok);
                ( "reasons",
                  J.List
                    (List.map
                       (fun r -> J.String r)
                       report.Ifc_modsys.Refine.reasons) );
              ])
        | Ok _ -> bad "replacement carries no module"))
    | Protocol.Mod_link ->
      let elaboration = Ifc_modsys.Link.elaborate l in
      (match Ifc_modsys.Link.binding ~lattice:lat l with
      | Error msg -> bad msg
      | Ok binding ->
        let spec =
          Job.make ~id:0 ~name:req.Protocol.mod_name ~lattice:lat ~binding
            ~analyses:[ Ifc_modsys.Link.job_analysis ~lattice:lat l ]
            elaboration
        in
        classify_job t ~timer ~v id ~op_name:"modsys" ~fields:modsys_link_fields
          ~job_name:req.Protocol.mod_name ~deadline:req.Protocol.mod_deadline_ms
          spec))

let stats_fields t =
  let cache_stats = Cache.stats t.cache in
  [
    ( "stats",
      J.Obj
        ([
          ("uptime_ns", J.Int (Int64.to_int (J.elapsed_ns t.started)));
          ("workers", J.Int (Pool.workers t.pool));
          ("conn_shards", J.Int t.config.shards);
          ("pending_jobs", J.Int (Pool.pending t.pool));
          ("active_connections", J.Int (Limits.value t.conns));
          ("peak_connections", J.Int (Limits.peak t.conns));
          ( "counters",
            J.Obj
              (List.map (fun (k, v) -> (k, J.Int v)) (J.snapshot t.counters)) );
          ( "cache",
            J.Obj
              [
                ("hits", J.Int cache_stats.Cache.hits);
                ("misses", J.Int cache_stats.Cache.misses);
                ("evictions", J.Int cache_stats.Cache.evictions);
                ("invalidations", J.Int cache_stats.Cache.invalidations);
                ("size", J.Int cache_stats.Cache.size);
                ("capacity", J.Int cache_stats.Cache.capacity);
                ("hit_rate_pct", J.Float (Cache.hit_rate cache_stats));
              ] );
          ("latency", J.Obj (J.histogram_fields t.latency));
        ]
        @
        (* Only present when a persistent tier is configured, so the
           stats response shape is unchanged for store-less servers. *)
        match t.config.store with
        | None -> []
        | Some tier ->
          [ ("store", J.Obj (Tier.stats_fields (tier.Tier.stats ()))) ]) );
  ]

(* One request item in, one action out: either the finished (and fully
   accounted) response line, or a pooled job for the connection engine
   to submit, backpressure, and race against its deadline. *)
let classify t item =
  let timer = J.start () in
  match item with
  | `Oversized ->
    J.incr t.counters "requests";
    J.incr t.counters "errors";
    J.incr t.counters "error.oversized";
    Dispatch.Immediate
      (finalize t ~timer ~op_name:"?" ~name:None (`Error "oversized")
         (Protocol.error_response ~id:J.Null Protocol.Oversized
            (Printf.sprintf "request exceeds the %d byte limit"
               t.config.limits.Limits.max_request_bytes)))
  | `Line line -> (
    let { Protocol.v; id; op; _ } = Protocol.parse_request line in
    J.incr t.counters "requests";
    match op with
    | Error (code, msg) ->
      J.incr t.counters "errors";
      J.incr t.counters ("error." ^ Protocol.code_string code);
      Dispatch.Immediate
        (finalize t ~timer ~op_name:"?" ~name:None
           (`Error (Protocol.code_string code))
           (Protocol.error_response ~v ~id code msg))
    | Ok Protocol.Ping ->
      J.incr t.counters "op.ping";
      Dispatch.Immediate
        (finalize t ~timer ~op_name:"ping" ~name:None `Ok
           (Protocol.ok_response ~v ~id ~op:"ping" []))
    | Ok Protocol.Stats ->
      J.incr t.counters "op.stats";
      Dispatch.Immediate
        (finalize t ~timer ~op_name:"stats" ~name:None `Ok
           (Protocol.ok_response ~v ~id ~op:"stats" (stats_fields t)))
    | Ok (Protocol.Check req) ->
      J.incr t.counters "op.check";
      classify_check t ~timer ~v id req
    | Ok (Protocol.Cert req) ->
      J.incr t.counters "op.cert";
      classify_cert t ~timer ~v id req
    | Ok (Protocol.Lint req) ->
      J.incr t.counters "op.lint";
      classify_lint t ~timer ~v id req
    | Ok (Protocol.Modsys req) ->
      J.incr t.counters "op.modsys";
      classify_modsys t ~timer ~v id req)

(* One request item in, one response line out: the blocking adapter
   over [classify] used by the thread-per-connection engine, embedders,
   and tests. The slot is an atomic written once by the worker; polling
   (1 ms) instead of a condition variable keeps the deadline honest
   even while the job is running. *)
let handle t item =
  match classify t item with
  | Dispatch.Immediate line -> line
  | Dispatch.Pooled p ->
    let slot = Atomic.make None in
    p.Dispatch.submit ~complete:(fun line -> Atomic.set slot (Some line));
    let rec wait () =
      match Atomic.get slot with
      | Some line -> line
      | None ->
        let expired =
          match p.Dispatch.deadline_ns with
          | Some d -> Int64.compare (J.now_ns ()) d > 0
          | None -> false
        in
        if expired then
          match p.Dispatch.timeout () with
          | Some line -> line
          | None -> wait () (* completion won the race; the slot is due *)
        else begin
          Thread.delay 0.001;
          wait ()
        end
    in
    wait ()

(* ------------------------------------------------------------------ *)
(* Accept loop, drain, shutdown *)

let spawn_connection t fd =
  if
    not
      (Limits.try_incr t.conns ~limit:t.config.limits.Limits.max_connections)
  then begin
    J.incr t.counters "errors";
    J.incr t.counters "error.overloaded";
    ignore
      (Conn.write_line fd
         (Protocol.error_response ~id:J.Null Protocol.Overloaded
            (Printf.sprintf "server is at its %d connection limit"
               t.config.limits.Limits.max_connections)));
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    J.incr t.counters "connections";
    let key = Atomic.fetch_and_add t.conn_seq 1 in
    let thread =
      Thread.create
        (fun () ->
          Fun.protect
            ~finally:(fun () ->
              Limits.decr t.conns;
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Mutex.lock t.threads_mutex;
              (* Deregister; if the spawner has not registered us yet,
                 leave a tombstone so it knows not to. *)
              if Hashtbl.mem t.threads key then Hashtbl.remove t.threads key
              else Hashtbl.replace t.finished key ();
              Mutex.unlock t.threads_mutex)
            (fun () ->
              Conn.serve ~limits:t.config.limits
                ~should_stop:(fun () -> Atomic.get t.stop)
                ~handle:(handle t) fd))
        ()
    in
    Mutex.lock t.threads_mutex;
    if Hashtbl.mem t.finished key then Hashtbl.remove t.finished key
    else Hashtbl.replace t.threads key thread;
    Mutex.unlock t.threads_mutex
  end

let drain t =
  if not (Atomic.exchange t.drained true) then begin
    List.iter
      (fun (fd, ep) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match ep with
        | Conn.Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | Conn.Tcp _ -> ())
      t.listeners;
    (* Event-loop engine: wake each shard out of its poll, then wait for
       it to drain (buffered requests answered, in-flight jobs done,
       responses flushed) and exit. *)
    List.iter Shard.wake t.shard_rts;
    List.iter Shard.join t.shard_rts;
    t.shard_rts <- [];
    (* Legacy engine: join the per-connection threads. *)
    let remaining () =
      Mutex.lock t.threads_mutex;
      let ts = Hashtbl.fold (fun _ th acc -> th :: acc) t.threads [] in
      Mutex.unlock t.threads_mutex;
      ts
    in
    List.iter Thread.join (remaining ());
    Pool.shutdown t.pool;
    (* The last writes are done: persist the cache's final recency
       ranking so the next boot preloads today's hot set. *)
    (match t.config.store with
    | Some tier -> tier.Tier.record_heat t.cache
    | None -> ());
    J.emit t.log
      [
        ("event", J.String "server_stop");
        ("uptime_ns", J.Int (Int64.to_int (J.elapsed_ns t.started)));
        ("requests", J.Int (J.count t.counters "requests"));
      ];
    J.close t.log
  end

(* Sharded engine: the acceptor only enforces the connection cap and
   deals accepted sockets round-robin to the shard event loops. *)
let assign_connection t shards next fd =
  if
    not
      (Limits.try_incr t.conns ~limit:t.config.limits.Limits.max_connections)
  then begin
    J.incr t.counters "errors";
    J.incr t.counters "error.overloaded";
    ignore
      (Conn.write_line fd
         (Protocol.error_response ~id:J.Null Protocol.Overloaded
            (Printf.sprintf "server is at its %d connection limit"
               t.config.limits.Limits.max_connections)));
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    J.incr t.counters "connections";
    let i = !next in
    next := (i + 1) mod Array.length shards;
    Shard.add shards.(i) fd
  end

let run t =
  J.emit t.log
    [
      ("event", J.String "server_start");
      ("workers", J.Int (Pool.workers t.pool));
      ( "endpoints",
        J.List
          (List.map
             (fun (_, ep) -> J.String (Fmt.str "%a" Conn.pp_endpoint ep))
             t.listeners) );
    ];
  let shards =
    if t.config.shards = 0 then [||]
    else
      Array.init t.config.shards (fun _ ->
          Shard.start ~limits:t.config.limits
            ~should_stop:(fun () -> Atomic.get t.stop)
            ~on_conn_close:(fun () -> Limits.decr t.conns)
            ~classify:(classify t) ())
  in
  t.shard_rts <- Array.to_list shards;
  let next = ref 0 in
  let fds = List.map fst t.listeners in
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select fds [] [] 0.2 with
      | ready, _, _ ->
        List.iter
          (fun lfd ->
            match Unix.accept lfd with
            | cfd, _addr ->
              if Array.length shards = 0 then spawn_connection t cfd
              else assign_connection t shards next cfd
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error _ -> ())
          ready
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  Fun.protect ~finally:(fun () -> drain t) loop
