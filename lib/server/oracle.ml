(* Differential server oracle: the same request stream must produce the
   same verdicts from the legacy thread-per-connection engine
   ([shards = 0]) and the sharded pipelined engine.

   A seeded generator builds a stream of check/cert/lint/ping requests
   (plus envelope errors) with distinct correlation ids. The stream is
   replayed serially against a legacy server and pipelined (window of
   in-flight requests, several connections) against a sharded server;
   responses are canonicalised — timing ([duration_ns]) and cache
   disposition ([cache]) fields stripped, since identical concurrent
   requests may legitimately race the cache — and compared byte for
   byte per id. Any divergence is a bug in one engine or the other. *)

module J = Ifc_pipeline.Telemetry

type divergence = { id : int; request : string; legacy : string; sharded : string }

type result_t = {
  requests : int;
  compared : int;
  divergences : divergence list;
}

(* ------------------------------------------------------------------ *)
(* Stream generation *)

let gen_line rng i =
  let id = J.Int i in
  let variant = Random.State.int rng 24 in
  let program = Loadgen.program_variant variant in
  match Random.State.int rng 12 with
  | 0 | 1 | 2 | 3 -> Protocol.check_line ~id ~name:"oracle" program
  | 4 | 5 ->
    (* A leaky program: verdicts must disagree with the clean variant
       identically on both engines. *)
    Protocol.check_line ~id ~name:"oracle"
      ~binding:"h : high\nx : low\ny : low"
      (Printf.sprintf
         "var h, x, y : integer;\nbegin x := h; y := x + %d end" variant)
  | 6 | 7 -> Protocol.cert_emit_line ~id ~name:"oracle" program
  | 8 | 9 -> Protocol.lint_line ~id ~name:"oracle" program
  | 10 -> Protocol.ping_line ~id ()
  | _ -> (
    (* Envelope errors: responses are fixed strings, so they diff too. *)
    match Random.State.int rng 3 with
    | 0 -> Printf.sprintf {|{"v": 99, "id": %d, "op": "ping"}|} i
    | 1 -> Printf.sprintf {|{"v": 1, "id": %d}|} i
    | _ -> Printf.sprintf {|{"v": 1, "id": %d, "op": "frobnicate"}|} i)

let gen_stream ~seed ~requests =
  let rng = Random.State.make [| seed |] in
  List.init requests (fun i -> (i, gen_line rng i))

(* ------------------------------------------------------------------ *)
(* Canonicalisation *)

let rec strip json =
  match json with
  | J.Obj fields ->
    J.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "cache" || k = "duration_ns" then None
           else Some (k, strip v))
         fields)
  | J.List items -> J.List (List.map strip items)
  | other -> other

(* ------------------------------------------------------------------ *)
(* Replay *)

(* Serial replay over one connection: the reference transcript. *)
let replay_serial endpoint stream =
  Client.with_client ~retry_for:5. endpoint (fun client ->
      let responses = Hashtbl.create (List.length stream) in
      let rec go = function
        | [] -> Ok responses
        | (i, line) :: rest -> (
          match Client.request client line with
          | Ok json ->
            Hashtbl.replace responses i (J.json_to_string (strip json));
            go rest
          | Error msg ->
            Error (Printf.sprintf "serial replay broke at id %d: %s" i msg))
      in
      go stream)

(* Pipelined replay: the stream is dealt round-robin over [conns]
   connections, each keeping [window] requests in flight. *)
let replay_pipelined ?(conns = 4) ?(window = 16) endpoint stream =
  let responses = Hashtbl.create (List.length stream) in
  let mutex = Mutex.create () in
  let failure = ref None in
  let fail msg =
    Mutex.lock mutex;
    if !failure = None then failure := Some msg;
    Mutex.unlock mutex
  in
  let slice k =
    List.filteri (fun idx _ -> idx mod conns = k) stream
  in
  let worker k =
    match Client.connect ~retry_for:5. endpoint with
    | Error msg -> fail msg
    | Ok client ->
      Fun.protect ~finally:(fun () -> Client.close client) @@ fun () ->
      let fd = Client.fd client and reader = Client.reader client in
      let todo = ref (slice k) and inflight = ref 0 and expected = ref 0 in
      List.iter (fun _ -> incr expected) (slice k);
      let received = ref 0 in
      let send_some () =
        while !inflight < window && !todo <> [] do
          match !todo with
          | [] -> ()
          | (_, line) :: rest ->
            if Conn.write_line fd line then begin
              todo := rest;
              incr inflight
            end
            else begin
              fail "pipelined replay: write failed";
              todo := []
            end
        done
      in
      send_some ();
      while !received < !expected && !failure = None do
        (match Conn.next_line reader with
        | `Line l -> (
          match
            Option.bind (Jsonx.parse l |> Result.to_option) (fun json ->
                Option.map
                  (fun id -> (id, json))
                  (Option.bind (Jsonx.member "id" json) Jsonx.int_opt))
          with
          | Some (id, json) ->
            Mutex.lock mutex;
            Hashtbl.replace responses id (J.json_to_string (strip json));
            Mutex.unlock mutex;
            incr received;
            decr inflight
          | None -> fail ("pipelined replay: uncorrelatable response " ^ l))
        | `Eof -> fail "pipelined replay: connection closed early"
        | `Oversized -> fail "pipelined replay: oversized response"
        | `Stop -> fail "pipelined replay: read interrupted");
        send_some ()
      done
  in
  let threads = List.init conns (fun k -> Thread.create worker k) in
  List.iter Thread.join threads;
  match !failure with Some msg -> Error msg | None -> Ok responses

(* ------------------------------------------------------------------ *)
(* Harness *)

let with_server ~shards ~workers f =
  let sock = Filename.temp_file "ifc-oracle" ".sock" in
  let config =
    {
      Server.default_config with
      endpoints = [ Conn.Unix_socket sock ];
      workers;
      shards;
      cache_capacity = 256;
    }
  in
  match Server.create config with
  | Error msg -> Error msg
  | Ok server ->
    let thread = Thread.create Server.run server in
    Fun.protect
      ~finally:(fun () ->
        Server.request_stop server;
        Thread.join thread;
        try Sys.remove sock with Sys_error _ -> ())
      (fun () -> f (Conn.Unix_socket sock))

let run ?(seed = 42) ?(requests = 500) ?(shards = 2) ?(workers = 2) () =
  let stream = gen_stream ~seed ~requests in
  let legacy =
    with_server ~shards:0 ~workers (fun endpoint ->
        replay_serial endpoint stream)
  in
  match legacy with
  | Error msg -> Error ("legacy engine: " ^ msg)
  | Ok legacy_responses -> (
    let sharded =
      with_server ~shards ~workers (fun endpoint ->
          replay_pipelined endpoint stream)
    in
    match sharded with
    | Error msg -> Error ("sharded engine: " ^ msg)
    | Ok sharded_responses ->
      let divergences =
        List.filter_map
          (fun (i, request) ->
            let missing = "<no response>" in
            let l =
              Option.value ~default:missing
                (Hashtbl.find_opt legacy_responses i)
            and s =
              Option.value ~default:missing
                (Hashtbl.find_opt sharded_responses i)
            in
            if l = s then None
            else Some { id = i; request; legacy = l; sharded = s })
          stream
      in
      Ok { requests; compared = List.length stream; divergences })

let report_fields r =
  [
    ("requests", J.Int r.requests);
    ("compared", J.Int r.compared);
    ("divergences", J.Int (List.length r.divergences));
    ( "first_divergences",
      J.List
        (List.filteri
           (fun i _ -> i < 5)
           (List.map
              (fun d ->
                J.Obj
                  [
                    ("id", J.Int d.id);
                    ("request", J.String d.request);
                    ("legacy", J.String d.legacy);
                    ("sharded", J.String d.sharded);
                  ])
              r.divergences)) );
  ]
