(* The versioned newline-delimited JSON wire protocol (see PROTOCOL.md). *)

module J = Ifc_pipeline.Telemetry

let version = 1

(* ------------------------------------------------------------------ *)
(* Error codes *)

type error_code =
  | Parse_error
  | Bad_version
  | Bad_request
  | Oversized
  | Overloaded
  | Timeout
  | Internal

let code_string = function
  | Parse_error -> "parse_error"
  | Bad_version -> "bad_version"
  | Bad_request -> "bad_request"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Internal -> "internal"

(* ------------------------------------------------------------------ *)
(* Requests *)

type check_request = {
  name : string;
  program : string;
  lattice : string;
  binding : string option;
  analyses : string list;
  self_check : bool;
  ni_pairs : int;
  ni_max_states : int;
  deadline_ms : int option;
}

type op = Check of check_request | Stats | Ping

type parsed = { id : J.json; op : (op, error_code * string) result }

let parse_check json =
  match Jsonx.mem_string "program" json with
  | None -> Error (Bad_request, "check requires a string \"program\" field")
  | Some program -> (
    let analyses =
      match Jsonx.member "analyses" json with
      | None -> Ok [ "cfm" ]
      | Some (J.String csv) ->
        let names =
          String.split_on_char ',' csv |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        if names = [] then Error (Bad_request, "empty \"analyses\" list")
        else Ok names
      | Some (J.List items) -> (
        match
          List.fold_left
            (fun acc item ->
              match (acc, Jsonx.string_opt item) with
              | Ok acc, Some s -> Ok (s :: acc)
              | (Error _ as e), _ -> e
              | Ok _, None ->
                Error (Bad_request, "\"analyses\" must be a list of strings"))
            (Ok []) items
        with
        | Ok [] -> Error (Bad_request, "empty \"analyses\" list")
        | Ok names -> Ok (List.rev names)
        | Error _ as e -> e)
      | Some _ ->
        Error (Bad_request, "\"analyses\" must be a list of strings or a CSV string")
    in
    let deadline_ms =
      match Jsonx.member "deadline_ms" json with
      | None -> Ok None
      | Some v -> (
        match Jsonx.int_opt v with
        | Some ms when ms > 0 -> Ok (Some ms)
        | _ -> Error (Bad_request, "\"deadline_ms\" must be a positive integer"))
    in
    match (analyses, deadline_ms) with
    | Error e, _ | _, Error e -> Error e
    | Ok analyses, Ok deadline_ms ->
      Ok
        (Check
           {
             name = Option.value ~default:"request" (Jsonx.mem_string "name" json);
             program;
             lattice = Option.value ~default:"two" (Jsonx.mem_string "lattice" json);
             binding = Jsonx.mem_string "binding" json;
             analyses;
             self_check =
               Option.value ~default:false (Jsonx.mem_bool "self_check" json);
             ni_pairs = Option.value ~default:8 (Jsonx.mem_int "ni_pairs" json);
             ni_max_states =
               Option.value ~default:20_000 (Jsonx.mem_int "ni_max_states" json);
             deadline_ms;
           }))

let parse_request line =
  match Jsonx.parse line with
  | Error msg -> { id = J.Null; op = Error (Parse_error, "invalid JSON: " ^ msg) }
  | Ok (J.Obj _ as json) -> (
    let id = Option.value ~default:J.Null (Jsonx.member "id" json) in
    match Jsonx.member "v" json with
    | None ->
      { id; op = Error (Bad_version, "missing \"v\" (protocol version) field") }
    | Some v -> (
      match Jsonx.int_opt v with
      | Some n when n = version -> (
        match Jsonx.mem_string "op" json with
        | None -> { id; op = Error (Bad_request, "missing string \"op\" field") }
        | Some "ping" -> { id; op = Ok Ping }
        | Some "stats" -> { id; op = Ok Stats }
        | Some "check" -> { id; op = parse_check json }
        | Some other ->
          {
            id;
            op =
              Error
                ( Bad_request,
                  Printf.sprintf "unknown op %S (use check, stats, or ping)" other
                );
          })
      | _ ->
        {
          id;
          op =
            Error
              ( Bad_version,
                Printf.sprintf "unsupported protocol version (this server speaks %d)"
                  version );
        }))
  | Ok _ -> { id = J.Null; op = Error (Parse_error, "request must be a JSON object") }

(* ------------------------------------------------------------------ *)
(* Responses *)

let response_line ~id fields =
  J.json_to_string (J.Obj ([ ("v", J.Int version); ("id", id) ] @ fields))

let ok_response ~id ~op fields =
  response_line ~id (("ok", J.Bool true) :: ("op", J.String op) :: fields)

let error_response ~id code message =
  response_line ~id
    [
      ("ok", J.Bool false);
      ( "error",
        J.Obj
          [ ("code", J.String (code_string code)); ("message", J.String message) ]
      );
    ]

(* ------------------------------------------------------------------ *)
(* Client-side request builders *)

let opt_field name f = function None -> [] | Some v -> [ (name, f v) ]

let check_line ?(id = J.Null) ?(name = "request") ?(lattice = "two") ?binding
    ?(analyses = [ "cfm" ]) ?(self_check = false) ?ni_pairs ?ni_max_states
    ?deadline_ms program =
  J.json_to_string
    (J.Obj
       ([
          ("v", J.Int version);
          ("id", id);
          ("op", J.String "check");
          ("name", J.String name);
          ("program", J.String program);
          ("lattice", J.String lattice);
        ]
       @ opt_field "binding" (fun b -> J.String b) binding
       @ [ ("analyses", J.List (List.map (fun a -> J.String a) analyses)) ]
       @ (if self_check then [ ("self_check", J.Bool true) ] else [])
       @ opt_field "ni_pairs" (fun n -> J.Int n) ni_pairs
       @ opt_field "ni_max_states" (fun n -> J.Int n) ni_max_states
       @ opt_field "deadline_ms" (fun n -> J.Int n) deadline_ms))

let stats_line ?(id = J.Null) () =
  J.json_to_string
    (J.Obj [ ("v", J.Int version); ("id", id); ("op", J.String "stats") ])

let ping_line ?(id = J.Null) () =
  J.json_to_string
    (J.Obj [ ("v", J.Int version); ("id", id); ("op", J.String "ping") ])

(* ------------------------------------------------------------------ *)
(* Client-side response readers *)

let response_ok json = Option.value ~default:false (Jsonx.mem_bool "ok" json)

let response_error json =
  match Jsonx.member "error" json with
  | None -> None
  | Some err ->
    Some
      ( Option.value ~default:"?" (Jsonx.mem_string "code" err),
        Option.value ~default:"" (Jsonx.mem_string "message" err) )

let response_verdict json = Jsonx.mem_string "verdict" json
