(* The versioned newline-delimited JSON wire protocol (see PROTOCOL.md). *)

module J = Ifc_pipeline.Telemetry

(* Version 2 added the cert op; version 3 the lint op; version 4 added
   no ops at all — it is a transport upgrade: a connection that declares
   v=4 may pipeline many requests and must correlate responses by [id],
   because they may come back out of order. Version 5 added the modsys
   op (module summaries, summary-based linking, refinement checks).
   Older requests remain valid and get byte-identical older responses:
   responses echo the request's declared version, and no pre-existing
   op's envelope changed shape. *)
let version = 5
let min_version = 1

(* ------------------------------------------------------------------ *)
(* Error codes *)

type error_code =
  | Parse_error
  | Bad_version
  | Bad_request
  | Oversized
  | Overloaded
  | Timeout
  | Internal

let code_string = function
  | Parse_error -> "parse_error"
  | Bad_version -> "bad_version"
  | Bad_request -> "bad_request"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Internal -> "internal"

(* ------------------------------------------------------------------ *)
(* Requests *)

type check_request = {
  name : string;
  program : string;
  lattice : string;
  binding : string option;
  analyses : string list;
  self_check : bool;
  ni_pairs : int;
  ni_max_states : int;
  deadline_ms : int option;
}

type cert_action = Cert_emit | Cert_check of string

type cert_request = {
  cert_name : string;
  cert_program : string;
  cert_lattice : string;
  cert_binding : string option;
  action : cert_action;
  cert_deadline_ms : int option;
}

type lint_request = {
  lint_name : string;
  lint_program : string;
  lint_deadline_ms : int option;
}

type modsys_action = Mod_summary | Mod_link | Mod_refine of string

type modsys_request = {
  mod_name : string;
  mod_program : string;
  mod_lattice : string;
  mod_action : modsys_action;
  mod_deadline_ms : int option;
}

type op =
  | Check of check_request
  | Cert of cert_request
  | Lint of lint_request
  | Modsys of modsys_request
  | Stats
  | Ping

(* [pipelined] is true only when the request successfully declared
   version 4: those responses may be reordered, everything else —
   including unparseable lines, which declared nothing — keeps the
   strict request-order guarantee of versions 1–3. *)
type parsed = {
  v : int;
  id : J.json;
  pipelined : bool;
  op : (op, error_code * string) result;
}

let parse_check json =
  match Jsonx.mem_string "program" json with
  | None -> Error (Bad_request, "check requires a string \"program\" field")
  | Some program -> (
    let analyses =
      match Jsonx.member "analyses" json with
      | None -> Ok [ "cfm" ]
      | Some (J.String csv) ->
        let names =
          String.split_on_char ',' csv |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        if names = [] then Error (Bad_request, "empty \"analyses\" list")
        else Ok names
      | Some (J.List items) -> (
        match
          List.fold_left
            (fun acc item ->
              match (acc, Jsonx.string_opt item) with
              | Ok acc, Some s -> Ok (s :: acc)
              | (Error _ as e), _ -> e
              | Ok _, None ->
                Error (Bad_request, "\"analyses\" must be a list of strings"))
            (Ok []) items
        with
        | Ok [] -> Error (Bad_request, "empty \"analyses\" list")
        | Ok names -> Ok (List.rev names)
        | Error _ as e -> e)
      | Some _ ->
        Error (Bad_request, "\"analyses\" must be a list of strings or a CSV string")
    in
    let deadline_ms =
      match Jsonx.member "deadline_ms" json with
      | None -> Ok None
      | Some v -> (
        match Jsonx.int_opt v with
        | Some ms when ms > 0 -> Ok (Some ms)
        | _ -> Error (Bad_request, "\"deadline_ms\" must be a positive integer"))
    in
    match (analyses, deadline_ms) with
    | Error e, _ | _, Error e -> Error e
    | Ok analyses, Ok deadline_ms ->
      Ok
        (Check
           {
             name = Option.value ~default:"request" (Jsonx.mem_string "name" json);
             program;
             lattice = Option.value ~default:"two" (Jsonx.mem_string "lattice" json);
             binding = Jsonx.mem_string "binding" json;
             analyses;
             self_check =
               Option.value ~default:false (Jsonx.mem_bool "self_check" json);
             ni_pairs = Option.value ~default:8 (Jsonx.mem_int "ni_pairs" json);
             ni_max_states =
               Option.value ~default:20_000 (Jsonx.mem_int "ni_max_states" json);
             deadline_ms;
           }))

let parse_deadline json =
  match Jsonx.member "deadline_ms" json with
  | None -> Ok None
  | Some v -> (
    match Jsonx.int_opt v with
    | Some ms when ms > 0 -> Ok (Some ms)
    | _ -> Error (Bad_request, "\"deadline_ms\" must be a positive integer"))

let parse_cert json =
  match Jsonx.mem_string "program" json with
  | None -> Error (Bad_request, "cert requires a string \"program\" field")
  | Some program -> (
    let action =
      match Jsonx.mem_string "action" json with
      | None | Some "emit" -> (
        match Jsonx.member "cert" json with
        | None -> Ok Cert_emit
        | Some _ ->
          Error (Bad_request, "\"cert\" is only meaningful with action \"check\"")
        )
      | Some "check" -> (
        match Jsonx.mem_string "cert" json with
        | Some text -> Ok (Cert_check text)
        | None ->
          Error (Bad_request, "action \"check\" requires a string \"cert\" field"))
      | Some other ->
        Error
          ( Bad_request,
            Printf.sprintf "unknown cert action %S (use emit or check)" other )
    in
    match (action, parse_deadline json) with
    | Error e, _ | _, Error e -> Error e
    | Ok action, Ok cert_deadline_ms ->
      Ok
        (Cert
           {
             cert_name =
               Option.value ~default:"request" (Jsonx.mem_string "name" json);
             cert_program = program;
             cert_lattice =
               Option.value ~default:"two" (Jsonx.mem_string "lattice" json);
             cert_binding = Jsonx.mem_string "binding" json;
             action;
             cert_deadline_ms;
           }))

let parse_lint json =
  match Jsonx.mem_string "program" json with
  | None -> Error (Bad_request, "lint requires a string \"program\" field")
  | Some program -> (
    match parse_deadline json with
    | Error e -> Error e
    | Ok lint_deadline_ms ->
      Ok
        (Lint
           {
             lint_name =
               Option.value ~default:"request" (Jsonx.mem_string "name" json);
             lint_program = program;
             lint_deadline_ms;
           }))

let parse_modsys json =
  match Jsonx.mem_string "program" json with
  | None -> Error (Bad_request, "modsys requires a string \"program\" field")
  | Some program -> (
    let action =
      match Jsonx.mem_string "action" json with
      | None | Some "link" -> (
        match Jsonx.member "replacement" json with
        | None -> Ok Mod_link
        | Some _ ->
          Error
            (Bad_request, "\"replacement\" is only meaningful with action \"refine\"")
        )
      | Some "summary" -> Ok Mod_summary
      | Some "refine" -> (
        match Jsonx.mem_string "replacement" json with
        | Some text -> Ok (Mod_refine text)
        | None ->
          Error
            ( Bad_request,
              "action \"refine\" requires a string \"replacement\" field" ))
      | Some other ->
        Error
          ( Bad_request,
            Printf.sprintf "unknown modsys action %S (use summary, link, or refine)"
              other )
    in
    match (action, parse_deadline json) with
    | Error e, _ | _, Error e -> Error e
    | Ok mod_action, Ok mod_deadline_ms ->
      Ok
        (Modsys
           {
             mod_name =
               Option.value ~default:"request" (Jsonx.mem_string "name" json);
             mod_program = program;
             mod_lattice =
               Option.value ~default:"two" (Jsonx.mem_string "lattice" json);
             mod_action;
             mod_deadline_ms;
           }))

let parse_request line =
  match Jsonx.parse line with
  | Error msg ->
    {
      v = version;
      id = J.Null;
      pipelined = false;
      op = Error (Parse_error, "invalid JSON: " ^ msg);
    }
  | Ok (J.Obj _ as json) -> (
    let id = Option.value ~default:J.Null (Jsonx.member "id" json) in
    match Jsonx.member "v" json with
    | None ->
      {
        v = version;
        id;
        pipelined = false;
        op = Error (Bad_version, "missing \"v\" (protocol version) field");
      }
    | Some v -> (
      match Jsonx.int_opt v with
      | Some n when n >= min_version && n <= version -> (
        let mk op = { v = n; id; pipelined = n >= 4; op } in
        match Jsonx.mem_string "op" json with
        | None -> mk (Error (Bad_request, "missing string \"op\" field"))
        | Some "ping" -> mk (Ok Ping)
        | Some "stats" -> mk (Ok Stats)
        | Some "check" -> mk (parse_check json)
        | Some "cert" when n >= 2 -> mk (parse_cert json)
        | Some "cert" ->
          mk
            (Error
               ( Bad_request,
                 "op \"cert\" requires protocol version 2 (request declared 1)"
               ))
        | Some "lint" when n >= 3 -> mk (parse_lint json)
        | Some "lint" ->
          mk
            (Error
               ( Bad_request,
                 Printf.sprintf
                   "op \"lint\" requires protocol version 3 (request declared \
                    %d)"
                   n ))
        | Some "modsys" when n >= 5 -> mk (parse_modsys json)
        | Some "modsys" ->
          mk
            (Error
               ( Bad_request,
                 Printf.sprintf
                   "op \"modsys\" requires protocol version 5 (request \
                    declared %d)"
                   n ))
        | Some other ->
          mk
            (Error
               ( Bad_request,
                 Printf.sprintf
                   "unknown op %S (use check, cert, lint, modsys, stats, or \
                    ping)"
                   other )))
      | _ ->
        {
          v = version;
          id;
          pipelined = false;
          op =
            Error
              ( Bad_version,
                Printf.sprintf
                  "unsupported protocol version (this server speaks %d through %d)"
                  min_version version );
        }))
  | Ok _ ->
    {
      v = version;
      id = J.Null;
      pipelined = false;
      op = Error (Parse_error, "request must be a JSON object");
    }

(* Cheap routing pre-scan for event loops: does this line declare
   protocol version 4? Only such lines may be dispatched out of order;
   everything else (older versions, garbage, missing [v]) must flow
   through the serial, order-preserving path. *)
let pipelined_line line =
  match Jsonx.parse line with
  | Ok (J.Obj _ as json) -> (
    match Option.bind (Jsonx.member "v" json) Jsonx.int_opt with
    | Some n -> n >= 4 && n <= version
    | None -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Responses *)

let response_line ?(v = version) ~id fields =
  J.json_to_string (J.Obj ([ ("v", J.Int v); ("id", id) ] @ fields))

let ok_response ?v ~id ~op fields =
  response_line ?v ~id (("ok", J.Bool true) :: ("op", J.String op) :: fields)

let error_response ?v ~id code message =
  response_line ?v ~id
    [
      ("ok", J.Bool false);
      ( "error",
        J.Obj
          [ ("code", J.String (code_string code)); ("message", J.String message) ]
      );
    ]

(* ------------------------------------------------------------------ *)
(* Client-side request builders *)

let opt_field name f = function None -> [] | Some v -> [ (name, f v) ]

let check_line ?(id = J.Null) ?(name = "request") ?(lattice = "two") ?binding
    ?(analyses = [ "cfm" ]) ?(self_check = false) ?ni_pairs ?ni_max_states
    ?deadline_ms program =
  J.json_to_string
    (J.Obj
       ([
          ("v", J.Int version);
          ("id", id);
          ("op", J.String "check");
          ("name", J.String name);
          ("program", J.String program);
          ("lattice", J.String lattice);
        ]
       @ opt_field "binding" (fun b -> J.String b) binding
       @ [ ("analyses", J.List (List.map (fun a -> J.String a) analyses)) ]
       @ (if self_check then [ ("self_check", J.Bool true) ] else [])
       @ opt_field "ni_pairs" (fun n -> J.Int n) ni_pairs
       @ opt_field "ni_max_states" (fun n -> J.Int n) ni_max_states
       @ opt_field "deadline_ms" (fun n -> J.Int n) deadline_ms))

let cert_emit_line ?(id = J.Null) ?(name = "request") ?(lattice = "two")
    ?binding ?deadline_ms program =
  J.json_to_string
    (J.Obj
       ([
          ("v", J.Int version);
          ("id", id);
          ("op", J.String "cert");
          ("action", J.String "emit");
          ("name", J.String name);
          ("program", J.String program);
          ("lattice", J.String lattice);
        ]
       @ opt_field "binding" (fun b -> J.String b) binding
       @ opt_field "deadline_ms" (fun n -> J.Int n) deadline_ms))

let cert_check_line ?(id = J.Null) ?(name = "request") ?deadline_ms ~cert
    program =
  J.json_to_string
    (J.Obj
       ([
          ("v", J.Int version);
          ("id", id);
          ("op", J.String "cert");
          ("action", J.String "check");
          ("name", J.String name);
          ("program", J.String program);
          ("cert", J.String cert);
        ]
       @ opt_field "deadline_ms" (fun n -> J.Int n) deadline_ms))

let lint_line ?(id = J.Null) ?(name = "request") ?deadline_ms program =
  J.json_to_string
    (J.Obj
       ([
          ("v", J.Int version);
          ("id", id);
          ("op", J.String "lint");
          ("name", J.String name);
          ("program", J.String program);
        ]
       @ opt_field "deadline_ms" (fun n -> J.Int n) deadline_ms))

let modsys_line ?(id = J.Null) ?(name = "request") ?(lattice = "two")
    ?(action = "link") ?replacement ?deadline_ms program =
  J.json_to_string
    (J.Obj
       ([
          ("v", J.Int version);
          ("id", id);
          ("op", J.String "modsys");
          ("action", J.String action);
          ("name", J.String name);
          ("program", J.String program);
          ("lattice", J.String lattice);
        ]
       @ opt_field "replacement" (fun r -> J.String r) replacement
       @ opt_field "deadline_ms" (fun n -> J.Int n) deadline_ms))

let stats_line ?(id = J.Null) () =
  J.json_to_string
    (J.Obj [ ("v", J.Int version); ("id", id); ("op", J.String "stats") ])

let ping_line ?(id = J.Null) () =
  J.json_to_string
    (J.Obj [ ("v", J.Int version); ("id", id); ("op", J.String "ping") ])

(* ------------------------------------------------------------------ *)
(* Client-side response readers *)

let response_ok json = Option.value ~default:false (Jsonx.mem_bool "ok" json)

let response_error json =
  match Jsonx.member "error" json with
  | None -> None
  | Some err ->
    Some
      ( Option.value ~default:"?" (Jsonx.mem_string "code" err),
        Option.value ~default:"" (Jsonx.mem_string "message" err) )

let response_verdict json = Jsonx.mem_string "verdict" json
