(** Robustness limits for the certification daemon, plus the shared
    connection gauge that enforces the connection cap. *)

type t = {
  max_request_bytes : int;
      (** Longest accepted request line in bytes; longer lines are
          consumed and answered with an [oversized] error. *)
  max_connections : int;
      (** Concurrent client connections; excess connections receive one
          [overloaded] response and are closed. [0] means unlimited. *)
  max_pending : int;
      (** Queued-but-unstarted jobs tolerated before a request is
          answered [overloaded] instead of being enqueued. [0] means
          unlimited. *)
  max_inflight : int;
      (** Concurrently executing pipelined (protocol v4) requests
          tolerated per connection before further pipelined requests
          are answered [overloaded] immediately — earlier in-flight
          requests still complete. [0] means unlimited. *)
  default_deadline_ms : int;
      (** Deadline applied to requests that carry none. [0] means no
          deadline. *)
}

val default : t
(** 1 MiB requests, 64 connections, 1024 pending jobs, 32 in-flight
    pipelined requests per connection, no deadline. *)

val fd_setsize : int
(** [1024]: the select(2) fd-set capacity the connection engines are
    subject to. A descriptor numbered [fd_setsize] or above makes
    [Unix.select] fail with a raw [EINVAL]. *)

val check_fd_budget : what:string -> int -> (unit, string) result
(** [check_fd_budget ~what n] rejects a requested connection or client
    count [n >= fd_setsize] with a message naming [what], so callers
    fail with a clear configuration error instead of a mid-run
    [EINVAL]. [n = 0] (unlimited) passes. *)

(** {1 Gauge}

    A thread-safe up/down counter with a peak-tracking high-water
    mark. *)

type gauge

val gauge : unit -> gauge

val try_incr : gauge -> limit:int -> bool
(** Increments and returns [true] unless the gauge already sits at
    [limit] ([limit <= 0] disables the cap). *)

val decr : gauge -> unit
(** Never drops below zero. *)

val value : gauge -> int

val peak : gauge -> int
