(* The classification result shared by the server's two connection
   engines (the legacy thread-per-connection loop and the sharded event
   loop), kept in its own module so Shard does not depend on Server.

   Classifying a request either produces the complete response line on
   the spot (cache hits, protocol errors, ping/stats, inline cert
   checks), or a pooled job: a handle the connection engine can submit
   to the worker pool, race against its deadline, and refuse under
   per-connection backpressure. Exactly one of {completion, timeout}
   renders the response — the two sides race through an internal
   once-flag, which is why [timeout] can answer [None]. *)

type pooled = {
  deadline_ns : int64 option;
      (* Absolute monotonic deadline (Telemetry.now_ns scale), already
         resolved against the server's default. *)
  cancelled : bool Atomic.t;
      (* Cooperative cancellation: set before a worker picks the job up
         and the job is never executed at all. The [timeout] callback
         sets it; engines killing a dead connection set it directly. *)
  submit : complete:(string -> unit) -> unit;
      (* Hand the job to the worker pool. [complete] is called at most
         once, from the worker, with the final accounted response line;
         it is never called after [timeout] has returned [Some _]. A
         pool already shutting down completes with an [overloaded]
         response instead of raising. *)
  timeout : unit -> string option;
      (* Deadline expiry: cancels the job and renders + accounts the
         timeout response — unless completion won the race, in which
         case [None] (the completion is in flight; keep waiting). *)
  refuse_inflight : unit -> string;
      (* Per-connection backpressure: renders + accounts an [overloaded]
         response for this request. Only valid instead of [submit],
         never after it. *)
}

type action = Immediate of string | Pooled of pooled
