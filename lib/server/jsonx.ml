(* A strict JSON parser producing Ifc_pipeline.Telemetry.json values.

   The server trusts nothing it reads off a socket: the parser rejects
   trailing garbage, unescaped control characters, lone surrogates, and
   nesting past a fixed depth (a hostile request cannot blow the OCaml
   stack). It accepts exactly the output of Telemetry.json_to_string,
   which is what makes round-trip testing of the emitter possible. *)

module Telemetry = Ifc_pipeline.Telemetry

exception Fail of int * string

type state = { s : string; mutable pos : int }

let fail st msg = raise (Fail (st.pos, msg))

let max_depth = 512

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when Char.equal d c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let keyword st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* ------------------------------------------------------------------ *)
(* Strings *)

let hex_value st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "invalid hex digit in \\u escape"

let parse_hex4 st =
  if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
  let v =
    (hex_value st st.s.[st.pos] lsl 12)
    lor (hex_value st st.s.[st.pos + 1] lsl 8)
    lor (hex_value st st.s.[st.pos + 2] lsl 4)
    lor hex_value st st.s.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_escape st buf =
  match peek st with
  | None -> fail st "truncated escape"
  | Some c -> (
    advance st;
    match c with
    | '"' -> Buffer.add_char buf '"'
    | '\\' -> Buffer.add_char buf '\\'
    | '/' -> Buffer.add_char buf '/'
    | 'b' -> Buffer.add_char buf '\b'
    | 'f' -> Buffer.add_char buf '\012'
    | 'n' -> Buffer.add_char buf '\n'
    | 'r' -> Buffer.add_char buf '\r'
    | 't' -> Buffer.add_char buf '\t'
    | 'u' ->
      let hi = parse_hex4 st in
      if hi >= 0xD800 && hi <= 0xDBFF then begin
        (* High surrogate: a low surrogate must follow. *)
        if
          st.pos + 2 <= String.length st.s
          && st.s.[st.pos] = '\\'
          && st.s.[st.pos + 1] = 'u'
        then begin
          st.pos <- st.pos + 2;
          let lo = parse_hex4 st in
          if lo >= 0xDC00 && lo <= 0xDFFF then
            add_utf8 buf (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
          else fail st "invalid low surrogate"
        end
        else fail st "lone high surrogate"
      end
      else if hi >= 0xDC00 && hi <= 0xDFFF then fail st "lone low surrogate"
      else add_utf8 buf hi
    | _ -> fail st (Printf.sprintf "invalid escape \\%c" c))

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    advance st;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      parse_escape st buf;
      go ()
    | c when Char.code c < 0x20 -> fail st "unescaped control character in string"
    | c ->
      Buffer.add_char buf c;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Numbers *)

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then advance st;
  let digits () =
    let seen = ref false in
    let rec go () =
      match peek st with
      | Some ('0' .. '9') ->
        seen := true;
        advance st;
        go ()
      | _ -> ()
    in
    go ();
    if not !seen then fail st "expected digit"
  in
  digits ();
  (match peek st with
  | Some '.' ->
    is_float := true;
    advance st;
    digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    digits ()
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  if !is_float then Telemetry.Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Telemetry.Int i
    | None -> Telemetry.Float (float_of_string text)

(* ------------------------------------------------------------------ *)
(* Values *)

let rec parse_value st depth =
  if depth > max_depth then fail st "nesting too deep";
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_obj st depth
  | Some '[' -> parse_array st depth
  | Some '"' -> Telemetry.String (parse_string st)
  | Some 't' -> keyword st "true" (Telemetry.Bool true)
  | Some 'f' -> keyword st "false" (Telemetry.Bool false)
  | Some 'n' -> keyword st "null" Telemetry.Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

and parse_obj st depth =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Telemetry.Obj []
  end
  else begin
    let fields = ref [] in
    let rec member () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st (depth + 1) in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        member ()
      | Some '}' -> advance st
      | _ -> fail st "expected ',' or '}'"
    in
    member ();
    Telemetry.Obj (List.rev !fields)
  end

and parse_array st depth =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    Telemetry.List []
  end
  else begin
    let items = ref [] in
    let rec element () =
      let v = parse_value st (depth + 1) in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        element ()
      | Some ']' -> advance st
      | _ -> fail st "expected ',' or ']'"
    in
    element ();
    Telemetry.List (List.rev !items)
  end

let parse s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st 0 in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Fail (pos, msg) -> Error (Printf.sprintf "at byte %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member name = function
  | Telemetry.Obj fields -> List.assoc_opt name fields
  | _ -> None

let string_opt = function Telemetry.String s -> Some s | _ -> None

let int_opt = function
  | Telemetry.Int i -> Some i
  | Telemetry.Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool_opt = function Telemetry.Bool b -> Some b | _ -> None

let list_opt = function Telemetry.List l -> Some l | _ -> None

let mem_string name json = Option.bind (member name json) string_opt

let mem_int name json = Option.bind (member name json) int_opt

let mem_bool name json = Option.bind (member name json) bool_opt
