(** The wire protocol of the certification daemon: version-1
    newline-delimited JSON, one request object per line, one response
    object per line, in order. PROTOCOL.md is the user-facing
    specification; this module is its implementation. *)

val version : int
(** [1]. Every request must carry [{"v": 1}]; every response echoes it. *)

(** {1 Error codes} *)

type error_code =
  | Parse_error  (** The line is not a JSON object. *)
  | Bad_version  (** Missing or unsupported ["v"]. *)
  | Bad_request  (** Structurally valid JSON, semantically wrong. *)
  | Oversized  (** The request line exceeded [max_request_bytes]. *)
  | Overloaded  (** Connection or queue limits hit; retry later. *)
  | Timeout  (** The request's deadline expired before completion. *)
  | Internal  (** The server faulted; the message says how. *)

val code_string : error_code -> string
(** The wire spelling, e.g. ["parse_error"]. *)

(** {1 Requests} *)

type check_request = {
  name : string;  (** Echoed in logs; defaults to ["request"]. *)
  program : string;  (** Program source text. *)
  lattice : string;  (** Builtin name or inline lattice spec text. *)
  binding : string option;  (** [name : class] lines; [None] uses the
                                program's declarations. *)
  analyses : string list;  (** denning/cfm/prove/ni. *)
  self_check : bool;
  ni_pairs : int;
  ni_max_states : int;
  deadline_ms : int option;
}

type op = Check of check_request | Stats | Ping

type parsed = { id : Ifc_pipeline.Telemetry.json; op : (op, error_code * string) result }
(** The request id is recovered even from requests that fail to parse
    beyond the envelope, so error responses still correlate. *)

val parse_request : string -> parsed

(** {1 Responses} *)

val ok_response :
  id:Ifc_pipeline.Telemetry.json ->
  op:string ->
  (string * Ifc_pipeline.Telemetry.json) list ->
  string
(** One rendered response line: [v], [id], [ok:true], [op], then the
    operation's own fields. *)

val error_response :
  id:Ifc_pipeline.Telemetry.json -> error_code -> string -> string
(** [v], [id], [ok:false], and an [error] object with [code] and
    [message]. *)

(** {1 Client-side builders and readers} *)

val check_line :
  ?id:Ifc_pipeline.Telemetry.json ->
  ?name:string ->
  ?lattice:string ->
  ?binding:string ->
  ?analyses:string list ->
  ?self_check:bool ->
  ?ni_pairs:int ->
  ?ni_max_states:int ->
  ?deadline_ms:int ->
  string ->
  string
(** [check_line program] renders one check request line. *)

val stats_line : ?id:Ifc_pipeline.Telemetry.json -> unit -> string

val ping_line : ?id:Ifc_pipeline.Telemetry.json -> unit -> string

val response_ok : Ifc_pipeline.Telemetry.json -> bool

val response_error : Ifc_pipeline.Telemetry.json -> (string * string) option
(** [(code, message)] when the response carries an error object. *)

val response_verdict : Ifc_pipeline.Telemetry.json -> string option
