(** The wire protocol of the certification daemon: versioned
    newline-delimited JSON, one request object per line, one response
    object per line. Versions 1–3 answer in request order; version 4
    adds pipelining, where responses correlate by [id] and may arrive
    out of order. PROTOCOL.md is the user-facing specification; this
    module is its implementation. *)

val version : int
(** [5]. The newest protocol version this server speaks. Requests carry
    [{"v": n}] with [min_version <= n <= version]; every response echoes
    the request's declared version, and no pre-existing op's envelope
    changed shape across versions, so older clients see exactly their
    version's wire format. Version 2 added the [cert] op; version 3 the
    [lint] op; version 4 added no ops — it grants the server permission
    to answer that request out of order (pipelining); version 5 added
    the [modsys] op (module summaries, summary-based linking, and
    refinement checks). *)

val min_version : int
(** [1]. The oldest protocol version still accepted. *)

(** {1 Error codes} *)

type error_code =
  | Parse_error  (** The line is not a JSON object. *)
  | Bad_version  (** Missing or unsupported ["v"]. *)
  | Bad_request  (** Structurally valid JSON, semantically wrong. *)
  | Oversized  (** The request line exceeded [max_request_bytes]. *)
  | Overloaded  (** Connection or queue limits hit; retry later. *)
  | Timeout  (** The request's deadline expired before completion. *)
  | Internal  (** The server faulted; the message says how. *)

val code_string : error_code -> string
(** The wire spelling, e.g. ["parse_error"]. *)

(** {1 Requests} *)

type check_request = {
  name : string;  (** Echoed in logs; defaults to ["request"]. *)
  program : string;  (** Program source text. *)
  lattice : string;  (** Builtin name or inline lattice spec text. *)
  binding : string option;  (** [name : class] lines; [None] uses the
                                program's declarations. *)
  analyses : string list;  (** denning/cfm/prove/ni. *)
  self_check : bool;
  ni_pairs : int;
  ni_max_states : int;
  deadline_ms : int option;
}

type cert_action =
  | Cert_emit  (** Build, serialize, and self-check a certificate. *)
  | Cert_check of string
      (** Independently validate the carried certificate text against the
          request's program. *)

type cert_request = {
  cert_name : string;  (** Echoed in logs; defaults to ["request"]. *)
  cert_program : string;  (** Program source text. *)
  cert_lattice : string;  (** Used by [emit]; [check] reads the
                              certificate's embedded lattice. *)
  cert_binding : string option;
  action : cert_action;
  cert_deadline_ms : int option;
}

type lint_request = {
  lint_name : string;  (** Echoed in logs; defaults to ["request"]. *)
  lint_program : string;  (** Program source text. *)
  lint_deadline_ms : int option;
}

type modsys_action =
  | Mod_summary  (** Summarize each module of the unit. *)
  | Mod_link  (** Certify the linked unit from summaries; pooled and
                  digest-cached like check/cert, with the [ifc-cert 2]
                  text as the response's [cert] field. *)
  | Mod_refine of string
      (** Check the carried replacement module source against the
          request's base module. *)

type modsys_request = {
  mod_name : string;  (** Echoed in logs; defaults to ["request"]. *)
  mod_program : string;
      (** Linked-unit source text ([module ... end] clauses, optional
          main program). For [refine], the first module is the base. *)
  mod_lattice : string;
  mod_action : modsys_action;
  mod_deadline_ms : int option;
}

type op =
  | Check of check_request
  | Cert of cert_request
  | Lint of lint_request
  | Modsys of modsys_request
  | Stats
  | Ping

type parsed = {
  v : int;
      (** The request's declared protocol version when it is one the
          server accepts; [version] otherwise. Responses echo it. *)
  id : Ifc_pipeline.Telemetry.json;
  pipelined : bool;
      (** True only when the request successfully declared version 4 or
          newer: its response may be reordered relative to neighbours.
          Always false for requests that failed version negotiation —
          they keep the strict ordering of versions 1–3. *)
  op : (op, error_code * string) result;
}
(** The request id is recovered even from requests that fail to parse
    beyond the envelope, so error responses still correlate. The [cert]
    op requires version 2, the [lint] op version 3, and the [modsys] op
    version 5; declaring an older version with a newer op is a
    [Bad_request]. *)

val parse_request : string -> parsed

val pipelined_line : string -> bool
(** Cheap routing pre-scan: does this raw line declare an accepted
    version >= 4? Event loops use this to decide — before full
    classification — whether a request may be dispatched out of order.
    Agrees with [(parse_request line).pipelined]. *)

(** {1 Responses} *)

val ok_response :
  ?v:int ->
  id:Ifc_pipeline.Telemetry.json ->
  op:string ->
  (string * Ifc_pipeline.Telemetry.json) list ->
  string
(** One rendered response line: [v] (the request's version; defaults to
    {!version}), [id], [ok:true], [op], then the operation's own
    fields. *)

val error_response :
  ?v:int -> id:Ifc_pipeline.Telemetry.json -> error_code -> string -> string
(** [v], [id], [ok:false], and an [error] object with [code] and
    [message]. *)

(** {1 Client-side builders and readers} *)

val check_line :
  ?id:Ifc_pipeline.Telemetry.json ->
  ?name:string ->
  ?lattice:string ->
  ?binding:string ->
  ?analyses:string list ->
  ?self_check:bool ->
  ?ni_pairs:int ->
  ?ni_max_states:int ->
  ?deadline_ms:int ->
  string ->
  string
(** [check_line program] renders one check request line. *)

val cert_emit_line :
  ?id:Ifc_pipeline.Telemetry.json ->
  ?name:string ->
  ?lattice:string ->
  ?binding:string ->
  ?deadline_ms:int ->
  string ->
  string
(** [cert_emit_line program] renders one version-2 cert/emit request. *)

val cert_check_line :
  ?id:Ifc_pipeline.Telemetry.json ->
  ?name:string ->
  ?deadline_ms:int ->
  cert:string ->
  string ->
  string
(** [cert_check_line ~cert program] renders one version-2 cert/check
    request carrying the certificate text to validate. *)

val lint_line :
  ?id:Ifc_pipeline.Telemetry.json ->
  ?name:string ->
  ?deadline_ms:int ->
  string ->
  string
(** [lint_line program] renders one version-3 lint request. Lint takes no
    lattice or binding: the concurrency analysis only reads the
    program. *)

val modsys_line :
  ?id:Ifc_pipeline.Telemetry.json ->
  ?name:string ->
  ?lattice:string ->
  ?action:string ->
  ?replacement:string ->
  ?deadline_ms:int ->
  string ->
  string
(** [modsys_line program] renders one version-5 modsys request over the
    linked-unit source [program]. [action] is ["summary"], ["link"]
    (default), or ["refine"]; [replacement] carries the candidate module
    source for ["refine"]. *)

val stats_line : ?id:Ifc_pipeline.Telemetry.json -> unit -> string

val ping_line : ?id:Ifc_pipeline.Telemetry.json -> unit -> string

val response_ok : Ifc_pipeline.Telemetry.json -> bool

val response_error : Ifc_pipeline.Telemetry.json -> (string * string) option
(** [(code, message)] when the response carries an error object. *)

val response_verdict : Ifc_pipeline.Telemetry.json -> string option
