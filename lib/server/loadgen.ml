(* Reusable load harness: many concurrent clients, protocol-v4
   pipelining, end-to-end latency histogram.

   One systhread per client connection keeps a window of in-flight
   requests open (write until [window] outstanding, then read one
   response and refill), correlating responses to requests by id —
   exactly the traffic shape the sharded engine is built for. Setting
   [window = 1] degrades to the classic serial request/response loop,
   which is how the differential oracle replays a stream against the
   legacy engine. *)

module J = Ifc_pipeline.Telemetry

type op = Check | Cert | Lint | Ping

let op_of_string = function
  | "check" -> Some Check
  | "cert" -> Some Cert
  | "lint" -> Some Lint
  | "ping" -> Some Ping
  | _ -> None

let op_to_string = function
  | Check -> "check"
  | Cert -> "cert"
  | Lint -> "lint"
  | Ping -> "ping"

type config = {
  endpoint : Conn.endpoint;
  clients : int;
  window : int;
  requests : int;
  distinct : int;
  ops : op list;
  name : string;
  retry_for : float;
}

let default_config endpoint =
  {
    endpoint;
    clients = 8;
    window = 8;
    requests = 50;
    distinct = 64;
    ops = [ Check ];
    name = "load";
    retry_for = 5.;
  }

type report = {
  clients : int;
  window : int;
  requests_sent : int;
  ok : int;
  failed : int;
  protocol_errors : int;
  connect_errors : int;
  duration_s : float;
  throughput_rps : float;
  codes : (string * int) list;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

(* Distinct integer literals defeat the result cache just enough to keep
   the worker pool honest; [distinct] bounds the variant count so longer
   runs still measure the cache-hit path too. *)
let program_variant v =
  Printf.sprintf "var x, y : integer;\nbegin x := %d; y := x end" (abs v)

let request_line ~id ~name ~variant op =
  let id = J.Int id in
  match op with
  | Check -> Protocol.check_line ~id ~name (program_variant variant)
  | Cert -> Protocol.cert_emit_line ~id ~name (program_variant variant)
  | Lint -> Protocol.lint_line ~id ~name (program_variant variant)
  | Ping -> Protocol.ping_line ~id ()

type shared = {
  mutex : Mutex.t;
  latency : J.histogram;
  mutable s_ok : int;
  mutable s_failed : int;
  mutable s_protocol_errors : int;
  mutable s_connect_errors : int;
  mutable s_sent : int;
  mutable s_codes : (string, int) Hashtbl.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let record_code shared code =
  match Hashtbl.find_opt shared.s_codes code with
  | Some n -> Hashtbl.replace shared.s_codes code (n + 1)
  | None -> Hashtbl.add shared.s_codes code 1

(* One client's whole conversation. [pending] maps in-flight ids to
   their send timestamps; a response for an unknown id, an unparseable
   line, or early EOF counts as a protocol error. *)
let client_loop cfg shared client_index =
  match Client.connect ~retry_for:cfg.retry_for cfg.endpoint with
  | Error _ ->
    with_lock shared.mutex (fun () ->
        shared.s_connect_errors <- shared.s_connect_errors + 1)
  | Ok conn ->
    Fun.protect ~finally:(fun () -> Client.close conn) @@ fun () ->
    let fd = Client.fd conn and reader = Client.reader conn in
    let ops = Array.of_list (if cfg.ops = [] then [ Check ] else cfg.ops) in
    let pending : (int, int64) Hashtbl.t = Hashtbl.create 16 in
    let sent = ref 0 and received = ref 0 and dead = ref false in
    let ok = ref 0 and failed = ref 0 and proto = ref 0 in
    let codes = Hashtbl.create 8 in
    let bump tbl code =
      match Hashtbl.find_opt tbl code with
      | Some n -> Hashtbl.replace tbl code (n + 1)
      | None -> Hashtbl.add tbl code 1
    in
    let send_one () =
      let seq = !sent in
      let id = (client_index * 10_000_000) + seq in
      let variant = ((client_index * cfg.requests) + seq) mod max 1 cfg.distinct in
      let op = ops.(seq mod Array.length ops) in
      let line = request_line ~id ~name:cfg.name ~variant op in
      if Conn.write_line fd line then begin
        Hashtbl.replace pending id (J.now_ns ());
        incr sent
      end
      else dead := true
    in
    let recv_one () =
      match Conn.next_line reader with
      | `Line l ->
        incr received;
        (match Jsonx.parse l with
        | Error _ -> incr proto
        | Ok json -> (
          match Option.bind (Jsonx.member "id" json) Jsonx.int_opt with
          | None -> incr proto
          | Some id -> (
            match Hashtbl.find_opt pending id with
            | None -> incr proto
            | Some started ->
              Hashtbl.remove pending id;
              J.observe shared.latency (Int64.sub (J.now_ns ()) started);
              if Protocol.response_ok json then begin
                incr ok;
                bump codes "ok"
              end
              else begin
                incr failed;
                bump codes
                  (match Protocol.response_error json with
                  | Some (code, _) -> code
                  | None -> "unknown")
              end)))
      | `Eof | `Oversized | `Stop ->
        if !received < !sent then incr proto;
        dead := true
    in
    while (not !dead) && !received < cfg.requests do
      while
        (not !dead) && !sent < cfg.requests
        && Hashtbl.length pending < max 1 cfg.window
      do
        send_one ()
      done;
      if not !dead then recv_one ()
    done;
    with_lock shared.mutex (fun () ->
        shared.s_ok <- shared.s_ok + !ok;
        shared.s_failed <- shared.s_failed + !failed;
        shared.s_protocol_errors <- shared.s_protocol_errors + !proto;
        shared.s_sent <- shared.s_sent + !sent;
        Hashtbl.iter
          (fun code n ->
            for _ = 1 to n do
              record_code shared code
            done)
          codes)

let run (cfg : config) =
  let shared =
    {
      mutex = Mutex.create ();
      latency = J.histogram ();
      s_ok = 0;
      s_failed = 0;
      s_protocol_errors = 0;
      s_connect_errors = 0;
      s_sent = 0;
      s_codes = Hashtbl.create 8;
    }
  in
  let started = J.now_ns () in
  let threads =
    List.init (max 1 cfg.clients) (fun i ->
        Thread.create (fun () -> client_loop cfg shared i) ())
  in
  List.iter Thread.join threads;
  let duration_s =
    Int64.to_float (Int64.sub (J.now_ns ()) started) /. 1e9
  in
  let completed = shared.s_ok + shared.s_failed in
  let q p = J.ns_to_ms (J.quantile_ns shared.latency p) in
  let codes =
    Hashtbl.fold (fun code n acc -> (code, n) :: acc) shared.s_codes []
    |> List.sort compare
  in
  let mean_ms =
    match List.assoc_opt "mean_ns" (J.histogram_fields shared.latency) with
    | Some (J.Float ns) -> ns /. 1e6
    | _ -> 0.
  in
  {
    clients = cfg.clients;
    window = cfg.window;
    requests_sent = shared.s_sent;
    ok = shared.s_ok;
    failed = shared.s_failed;
    protocol_errors = shared.s_protocol_errors;
    connect_errors = shared.s_connect_errors;
    duration_s;
    throughput_rps =
      (if duration_s > 0. then float_of_int completed /. duration_s else 0.);
    codes;
    mean_ms;
    p50_ms = q 0.50;
    p95_ms = q 0.95;
    p99_ms = q 0.99;
    max_ms =
      (match List.assoc_opt "max_ns" (J.histogram_fields shared.latency) with
      | Some (J.Int ns) -> J.ns_to_ms (Int64.of_int ns)
      | _ -> 0.);
  }

let report_fields r =
  [
    ("clients", J.Int r.clients);
    ("window", J.Int r.window);
    ("requests_sent", J.Int r.requests_sent);
    ("ok", J.Int r.ok);
    ("failed", J.Int r.failed);
    ("protocol_errors", J.Int r.protocol_errors);
    ("connect_errors", J.Int r.connect_errors);
    ("duration_s", J.Float r.duration_s);
    ("throughput_rps", J.Float r.throughput_rps);
    ("mean_ms", J.Float r.mean_ms);
    ("p50_ms", J.Float r.p50_ms);
    ("p95_ms", J.Float r.p95_ms);
    ("p99_ms", J.Float r.p99_ms);
    ("max_ms", J.Float r.max_ms);
    ( "codes",
      J.Obj (List.map (fun (code, n) -> (code, J.Int n)) r.codes) );
  ]
