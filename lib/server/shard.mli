(** A connection shard: one thread multiplexing many client sockets
    over nonblocking I/O and a single [select], owning every read/write
    buffer for the connections assigned to it. Worker-pool completions
    re-enter the loop through an inbox and a self-pipe wake-up.

    Requests that successfully declared protocol version 4 are
    classified on arrival, run concurrently up to the per-connection
    [max_inflight] cap, and may be answered out of order. Everything
    else flows through a per-connection serial queue — classified one
    at a time, only when every earlier request has been answered — so
    protocol versions 1–3 keep their strict ordering and their
    classify-at-dispatch cache semantics, byte for byte. *)

type t

val start :
  limits:Limits.t ->
  should_stop:(unit -> bool) ->
  on_conn_close:(unit -> unit) ->
  classify:(Conn.item -> Dispatch.action) ->
  unit ->
  t
(** Spawns the shard thread. [classify] is called on the shard thread
    (serial items) or on it for pipelined arrivals; pooled jobs complete
    from worker threads via the inbox. [on_conn_close] fires once per
    closed connection (gauge bookkeeping). The thread exits once
    [should_stop] answers [true] {e and} every assigned connection has
    drained: buffered requests answered, in-flight jobs completed or
    timed out, responses flushed. *)

val add : t -> Unix.file_descr -> unit
(** Assign an accepted connection to this shard. The shard takes
    ownership of the fd (sets it nonblocking, closes it on exit). *)

val wake : t -> unit
(** Kick the loop out of its poll (used when requesting a stop). *)

val join : t -> unit
