(* One connection shard: a thread multiplexing many client sockets over
   nonblocking I/O and one [select], owning every read/write buffer for
   the connections assigned to it. Worker completions re-enter through a
   mutex-protected inbox plus a self-pipe byte, so the loop never blocks
   longer than its poll interval with work queued.

   Ordering contract (see PROTOCOL.md §version 4): items that did not
   successfully declare protocol v4 — older versions, garbage, oversized
   tombstones — flow through a per-connection serial queue, classified
   one at a time only when everything before them has been answered, so
   versions 1–3 keep their strict request-order, classify-at-dispatch
   semantics (a cache hit is a hit at the moment the request is served,
   exactly as in the thread-per-connection engine). Requests that did
   declare v4 are classified on arrival and may be answered out of
   order; the per-connection in-flight cap backpressures them with an
   immediate [overloaded] response while earlier requests keep
   running. *)

module J = Ifc_pipeline.Telemetry

type msg =
  | Add_conn of Unix.file_descr
  | Done of int * int * string (* connection key, pending token, response *)

type pending = {
  p_cancelled : bool Atomic.t;
  p_timeout : unit -> string option;
  p_deadline_ns : int64 option;
  p_serial : bool;
}

type cstate = {
  fd : Unix.file_descr;
  key : int;
  reader : Conn.reader;
  serial_q : Conn.item Queue.t;
  pending : (int, pending) Hashtbl.t;
  buf : Buffer.t; (* response bytes not yet written *)
  mutable out_pos : int; (* first unwritten byte in [buf] *)
  mutable serial_busy : bool;
  mutable closing : bool; (* EOF seen: drain, then close *)
}

type t = {
  thread : Thread.t;
  inbox : msg Queue.t;
  inbox_mutex : Mutex.t;
  wake_w : Unix.file_descr;
}

let post t msg =
  Mutex.lock t.inbox_mutex;
  Queue.push msg t.inbox;
  Mutex.unlock t.inbox_mutex;
  (* Best effort: a full pipe already guarantees a wake-up. *)
  match Unix.write t.wake_w (Bytes.make 1 '!') 0 1 with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let add t fd = post t (Add_conn fd)

let wake t = post t (Done (-1, -1, ""))

let join t = Thread.join t.thread

(* ------------------------------------------------------------------ *)
(* The event loop *)

let start ~limits ~should_stop ~on_conn_close ~classify () =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let inbox = Queue.create () in
  let inbox_mutex = Mutex.create () in
  let conns : (int, cstate) Hashtbl.t = Hashtbl.create 64 in
  let by_fd : (Unix.file_descr, cstate) Hashtbl.t = Hashtbl.create 64 in
  let key_seq = ref 0 and token_seq = ref 0 in
  let max_inflight = limits.Limits.max_inflight in
  let self = ref None in
  let post_done key token line =
    match !self with Some t -> post t (Done (key, token, line)) | None -> ()
  in

  let push_out conn line =
    Buffer.add_string conn.buf line;
    Buffer.add_char conn.buf '\n'
  in

  let dispatch_pooled conn ~serial (p : Dispatch.pooled) =
    incr token_seq;
    let token = !token_seq in
    Hashtbl.replace conn.pending token
      {
        p_cancelled = p.Dispatch.cancelled;
        p_timeout = p.Dispatch.timeout;
        p_deadline_ns = p.Dispatch.deadline_ns;
        p_serial = serial;
      };
    if serial then conn.serial_busy <- true;
    let key = conn.key in
    p.Dispatch.submit ~complete:(fun line -> post_done key token line)
  in

  (* Serve the serial queue head-first; a pooled job parks the queue
     until its completion (or timeout) reopens it. *)
  let rec pump_serial conn =
    if not conn.serial_busy then
      match Queue.take_opt conn.serial_q with
      | None -> ()
      | Some item -> (
        match classify item with
        | Dispatch.Immediate line ->
          push_out conn line;
          pump_serial conn
        | Dispatch.Pooled p -> dispatch_pooled conn ~serial:true p)
  in

  let handle_pipelined conn item =
    match classify item with
    | Dispatch.Immediate line -> push_out conn line
    | Dispatch.Pooled p ->
      if max_inflight > 0 && Hashtbl.length conn.pending >= max_inflight then
        push_out conn (p.Dispatch.refuse_inflight ())
      else dispatch_pooled conn ~serial:false p
  in

  let route conn item =
    match item with
    | `Line l when Protocol.pipelined_line l -> handle_pipelined conn item
    | _ -> Queue.push item conn.serial_q
  in

  let drain_items conn =
    let rec go () =
      match Conn.pop_item conn.reader with
      | None -> ()
      | Some item ->
        route conn item;
        go ()
    in
    go ();
    pump_serial conn
  in

  let read_conn conn =
    let rec go () =
      match Conn.feed_fd conn.reader with
      | `Read -> go ()
      | `Blocked -> ()
      | `Eof -> conn.closing <- true
    in
    go ();
    drain_items conn
  in

  let abandon_pending conn =
    Hashtbl.iter
      (fun _ p -> Atomic.set p.p_cancelled true)
      conn.pending;
    Hashtbl.reset conn.pending
  in

  let close_conn conn =
    abandon_pending conn;
    Hashtbl.remove conns conn.key;
    Hashtbl.remove by_fd conn.fd;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    on_conn_close ()
  in

  let flush_conn conn =
    let len = Buffer.length conn.buf in
    if conn.out_pos < len then begin
      let data = Buffer.contents conn.buf in
      match Unix.write_substring conn.fd data conn.out_pos (len - conn.out_pos) with
      | n ->
        conn.out_pos <- conn.out_pos + n;
        if conn.out_pos >= Buffer.length conn.buf then begin
          Buffer.clear conn.buf;
          conn.out_pos <- 0
        end
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ ->
        (* Dead peer: in-flight work is abandoned cooperatively. *)
        close_conn conn
    end
  in

  let expire_deadlines now =
    Hashtbl.iter
      (fun _ conn ->
        let expired =
          Hashtbl.fold
            (fun token p acc ->
              match p.p_deadline_ns with
              | Some d when Int64.compare now d > 0 -> (token, p) :: acc
              | _ -> acc)
            conn.pending []
        in
        List.iter
          (fun (token, p) ->
            match p.p_timeout () with
            | Some line ->
              Hashtbl.remove conn.pending token;
              if p.p_serial then conn.serial_busy <- false;
              push_out conn line
            | None -> (* completion won the race; its Done is in flight *) ())
          expired;
        if expired <> [] then pump_serial conn)
      conns
  in

  let handle_msg = function
    | Add_conn fd ->
      Unix.set_nonblock fd;
      incr key_seq;
      let key = !key_seq in
      let conn =
        {
          fd;
          key;
          reader = Conn.reader ~max_bytes:limits.Limits.max_request_bytes fd;
          serial_q = Queue.create ();
          pending = Hashtbl.create 8;
          buf = Buffer.create 256;
          out_pos = 0;
          serial_busy = false;
          closing = false;
        }
      in
      Hashtbl.replace conns key conn;
      Hashtbl.replace by_fd fd conn
    | Done (key, token, line) -> (
      match Hashtbl.find_opt conns key with
      | None -> (* connection died first; drop the response *) ()
      | Some conn -> (
        match Hashtbl.find_opt conn.pending token with
        | None -> (* timed out earlier; drop the late response *) ()
        | Some p ->
          Hashtbl.remove conn.pending token;
          if p.p_serial then conn.serial_busy <- false;
          push_out conn line;
          pump_serial conn))
  in

  let drain_inbox () =
    let rec go () =
      let msg =
        Mutex.lock inbox_mutex;
        let m = Queue.take_opt inbox in
        Mutex.unlock inbox_mutex;
        m
      in
      match msg with
      | None -> ()
      | Some m ->
        handle_msg m;
        go ()
    in
    go ()
  in

  let drain_wake_pipe () =
    let b = Bytes.create 64 in
    let rec go () =
      match Unix.read wake_r b 0 64 with
      | 64 -> go ()
      | _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in

  (* A connection is complete when nothing more can produce output for
     it: peer gone or server stopping, queues empty, responses
     flushed. *)
  let finished conn =
    (conn.closing || should_stop ())
    && Hashtbl.length conn.pending = 0
    && Queue.is_empty conn.serial_q
    && (not conn.serial_busy)
    && Buffer.length conn.buf = conn.out_pos
  in

  let reap () =
    let done_ =
      Hashtbl.fold
        (fun _ conn acc -> if finished conn then conn :: acc else acc)
        conns []
    in
    List.iter close_conn done_
  in

  let loop () =
    let rec go () =
      let stopping = should_stop () in
      let read_fds =
        wake_r
        :: Hashtbl.fold
             (fun _ conn acc ->
               (* Stop reading at EOF, during drain, and while the peer
                  is not consuming its responses (write backpressure). *)
               if
                 conn.closing || stopping
                 || Buffer.length conn.buf - conn.out_pos
                    > limits.Limits.max_request_bytes
               then acc
               else conn.fd :: acc)
             conns []
      in
      let write_fds =
        Hashtbl.fold
          (fun _ conn acc ->
            if Buffer.length conn.buf > conn.out_pos then conn.fd :: acc
            else acc)
          conns []
      in
      let now = J.now_ns () in
      let timeout =
        Hashtbl.fold
          (fun _ conn acc ->
            Hashtbl.fold
              (fun _ p acc ->
                match p.p_deadline_ns with
                | Some d ->
                  let dt = Int64.to_float (Int64.sub d now) /. 1e9 in
                  Float.min acc (Float.max 0.001 dt)
                | None -> acc)
              conn.pending acc)
          conns 0.2
      in
      (match Unix.select read_fds write_fds [] timeout with
      | readable, writable, _ ->
        if List.memq wake_r readable then drain_wake_pipe ();
        drain_inbox ();
        List.iter
          (fun fd ->
            if fd != wake_r then
              match Hashtbl.find_opt by_fd fd with
              | Some conn -> read_conn conn
              | None -> ())
          readable;
        expire_deadlines (J.now_ns ());
        ignore writable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      (* Flush whatever the cycle produced without waiting for the next
         writability notice; EAGAIN just leaves it for select. *)
      drain_inbox ();
      expire_deadlines (J.now_ns ());
      let snapshot = Hashtbl.fold (fun _ conn acc -> conn :: acc) conns [] in
      List.iter flush_conn snapshot;
      reap ();
      if not (should_stop () && Hashtbl.length conns = 0) then go ()
    in
    (try go () with e ->
      Printf.eprintf "ifc serve: shard died: %s\n%!" (Printexc.to_string e));
    (try Unix.close wake_r with Unix.Unix_error _ -> ());
    try Unix.close wake_w with Unix.Unix_error _ -> ()
  in
  let t =
    { thread = Thread.create loop (); inbox; inbox_mutex; wake_w }
  in
  self := Some t;
  t
