(** Socket plumbing shared by the daemon and its clients: endpoint
    addressing, a bounded newline-delimited reader, and the
    one-request-per-line serve loop.

    Everything here polls: blocking reads are [select] loops with a
    short timeout and a [should_stop] callback, which is what lets a
    draining server close idle connections without killing in-flight
    requests, and lets [EINTR] (signal delivery) never surface. *)

type endpoint = Unix_socket of string | Tcp of string * int
(** Where a server listens or a client connects. [Tcp (host, 0)] asks
    the kernel for an ephemeral port (see {!Server.port}). *)

val pp_endpoint : Format.formatter -> endpoint -> unit
(** ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val tcp_of_string : string -> (endpoint, string) result
(** Parses ["HOST:PORT"]; an empty host means ["127.0.0.1"]. *)

val sockaddr_of_endpoint : endpoint -> (Unix.sockaddr, string) result
(** Resolves the host by literal address first, then by name. *)

(** {1 Reading} *)

type item = [ `Line of string | `Oversized ]
(** One parsed unit of input: a complete line (newline stripped, CRLF
    tolerated), or the tombstone of a line that outgrew the reader's
    byte limit and was discarded — the connection itself survives. *)

type reader

val reader : ?max_bytes:int -> Unix.file_descr -> reader
(** [max_bytes] caps a single line (default unlimited — clients trust
    their server; servers must not trust their clients). *)

val next_line :
  ?poll_interval:float ->
  ?should_stop:(unit -> bool) ->
  reader ->
  [ `Line of string | `Oversized | `Eof | `Stop ]
(** Blocks (polling every [poll_interval] seconds, default 0.2) until a
    full line is available, the peer closes, or [should_stop] answers
    [true] between polls. *)

val feed_fd : reader -> [ `Read | `Eof | `Blocked ]
(** Nonblocking half of the reader, for event loops: one [read] attempt
    on the fd (which must be in nonblocking mode), feeding any bytes to
    the line splitter. [`Read] means progress was made and more may be
    pending; [`Blocked] means the socket has nothing right now; [`Eof]
    is sticky (peer closed or errored). Buffered items survive [`Eof] —
    drain them with {!pop_item}. *)

val pop_item : reader -> item option
(** Takes the next buffered item without touching the socket. *)

val at_eof : reader -> bool

(** {1 Writing} *)

val write_line : Unix.file_descr -> string -> bool
(** Writes [line ^ "\n"] fully; [false] if the peer is gone ([EPIPE]
    and friends), which callers treat as end-of-connection. *)

(** {1 Serving} *)

val serve :
  limits:Limits.t ->
  should_stop:(unit -> bool) ->
  handle:(item -> string) ->
  Unix.file_descr ->
  unit
(** The connection loop: read one request item, write [handle item] as
    one response line, repeat until EOF, a dead peer, or [should_stop].
    The stop check only fires {e between} requests — an accepted request
    always gets its response, which is the drain guarantee. *)
