(** The certification daemon: IFC-as-a-service over the batch pipeline.

    One server multiplexes any number of concurrent client connections
    onto a single {!Ifc_pipeline.Pool} of worker domains and one shared
    content-addressed {!Ifc_pipeline.Cache} — so every client benefits
    from every other client's certifications. The wire protocol is
    {!Protocol} (newline-delimited JSON, versioned; version 4 adds
    per-connection pipelining); robustness comes from {!Limits}
    (request size, connection, queue, and in-flight caps, deadlines
    with cooperative cancellation) and observability from
    {!Ifc_pipeline.Telemetry} (counters, a latency histogram, an
    optional JSONL request log, and the [stats] operation).

    Two connection engines share one classification core. The default
    sharded engine runs [shards] event-loop threads, each owning the
    read/write buffers of the connections dealt to it, batching NDJSON
    reads and writes and dispatching pipelined requests concurrently.
    Setting [shards = 0] selects the legacy thread-per-connection
    engine — retained as the reference implementation the differential
    server oracle replays request streams against.

    Lifecycle: {!create} binds the sockets, {!run} serves until
    {!request_stop} (typically from a SIGINT/SIGTERM handler — it only
    flips an atomic, so it is safe in a signal handler), then drains:
    in-flight requests complete and are answered, connection threads and
    worker domains are joined, the request log is flushed and closed,
    and Unix socket files are unlinked. *)

type config = {
  endpoints : Conn.endpoint list;  (** At least one. *)
  workers : int;  (** Worker domains for the job pool. *)
  shards : int;
      (** Connection-shard event loops. [0] selects the legacy
          thread-per-connection engine. The shared cache is striped
          [max 1 shards] ways. *)
  cache_capacity : int;  (** Shared LRU result cache entries. *)
  limits : Limits.t;
  log : Ifc_pipeline.Telemetry.sink option;
      (** JSONL request log; the server closes it on drain. *)
  store : Ifc_pipeline.Tier.t option;
      (** Persistent second-level result tier. When set, {!create}
          warm-starts the memory cache from the tier's hottest
          generation, cache misses consult the tier before computing,
          computed results are persisted, drain records the cache's
          final heat back to the tier, and [stats] responses gain a
          [store] object. *)
}

val default_config : config
(** No endpoints (caller must add some), 1 worker, the recommended
    domain count of connection shards, 4096 cache entries,
    {!Limits.default}, no log, no store. *)

type t

val create : config -> (t, string) result
(** Binds and listens on every endpoint (stale Unix socket files are
    unlinked first), spawns the worker pool, and ignores [SIGPIPE]
    process-wide (a dead client must be an [EPIPE], not a crash). *)

val port : t -> int option
(** The actual port of the first TCP endpoint — useful after binding
    port [0]. *)

val run : t -> unit
(** The accept loop. Blocks until {!request_stop}, then drains and
    releases everything. Call from the thread that should own the
    server's lifetime. *)

val request_stop : t -> unit
(** Initiate graceful shutdown; safe to call from a signal handler or
    any thread, idempotent. *)

val stopped : t -> bool

val handle : t -> Conn.item -> string
(** One request item in, one response line out — the connection loop's
    handler, exposed so embedders and tests can drive a server without
    sockets. *)
