(** Load harness for the certification daemon.

    Spawns [clients] concurrent connections, each keeping [window]
    protocol-v4 pipelined requests in flight ([window = 1] is the
    classic serial loop), and measures end-to-end latency per request
    plus aggregate throughput. This is the engine behind [ifc loadgen]
    and the bench [load] section; the differential {!Oracle} reuses the
    same request shapes. *)

type op = Check | Cert | Lint | Ping

val op_of_string : string -> op option

val op_to_string : op -> string

type config = {
  endpoint : Conn.endpoint;
  clients : int;  (** Concurrent connections. *)
  window : int;  (** In-flight requests per connection; [1] = serial. *)
  requests : int;  (** Requests per connection. *)
  distinct : int;
      (** Distinct program variants cycled through — the cache-pressure
          knob. [1] makes every request a cache hit after the first. *)
  ops : op list;  (** Cycled per request; empty means [[Check]]. *)
  name : string;
      (** Request name sent with every job — name a load ["stall…"] to
          trip the server's [IFC_SERVE_PLANT_STALL] fault-injection
          hook. *)
  retry_for : float;  (** Passed to {!Client.connect}. *)
}

val default_config : Conn.endpoint -> config
(** 8 clients, window 8, 50 requests each, 64 program variants,
    checks only, 5 s connect retry. *)

type report = {
  clients : int;
  window : int;
  requests_sent : int;
  ok : int;  (** Responses with [ok:true]. *)
  failed : int;  (** Responses with [ok:false] (any error code). *)
  protocol_errors : int;
      (** Unparseable responses, unknown correlation ids, or
          connections dropped with requests still in flight. *)
  connect_errors : int;
  duration_s : float;
  throughput_rps : float;  (** Completed responses per second. *)
  codes : (string * int) list;
      (** Response disposition histogram: ["ok"] or the error code. *)
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

val run : config -> report
(** Runs the whole load to completion (one systhread per client) and
    aggregates. Never raises on server misbehaviour — failures land in
    the report's error counters. *)

val report_fields : report -> (string * Ifc_pipeline.Telemetry.json) list
(** The report as JSON fields, ready for [Telemetry.json_to_string] or
    a bench record. *)

val program_variant : int -> string
(** The program text for variant [v] — exposed so the oracle and tests
    generate the same corpus. *)
