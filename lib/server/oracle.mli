(** Differential server oracle.

    Replays one seeded request stream against both connection engines —
    serially against the legacy thread-per-connection engine
    ([shards = 0]) and pipelined against the sharded engine — and
    demands byte-identical responses per correlation id after stripping
    the two legitimately nondeterministic fields ([duration_ns] timing
    and [cache] disposition, which concurrent identical requests may
    race). A nonempty divergence list is a bug in one engine. *)

type divergence = {
  id : int;  (** Correlation id of the diverging request. *)
  request : string;  (** The request line as sent. *)
  legacy : string;  (** Canonicalised legacy-engine response. *)
  sharded : string;  (** Canonicalised sharded-engine response. *)
}

type result_t = {
  requests : int;
  compared : int;
  divergences : divergence list;  (** Empty means the engines agree. *)
}

val gen_stream : seed:int -> requests:int -> (int * string) list
(** The deterministic stream: [(id, request line)] pairs mixing checks
    (clean and leaky), cert emissions, lints, pings, and envelope
    errors. Same seed, same stream — forever. *)

val run :
  ?seed:int ->
  ?requests:int ->
  ?shards:int ->
  ?workers:int ->
  unit ->
  (result_t, string) result
(** [run ()] boots both servers in-process on temporary Unix sockets,
    replays, compares, and tears down. Defaults: seed 42, 500 requests,
    2 shards, 2 workers. [Error] means a replay itself broke (transport
    failure), which is just as damning as a divergence. *)

val report_fields : result_t -> (string * Ifc_pipeline.Telemetry.json) list
(** JSON summary: counts plus the first five divergences in full. *)
