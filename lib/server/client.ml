(* The matching client: connect, send one request line, read one
   response line. *)

module J = Ifc_pipeline.Telemetry

type t = { fd : Unix.file_descr; reader : Conn.reader }

let connect ?(retry_for = 0.) endpoint =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match Conn.sockaddr_of_endpoint endpoint with
  | Error msg -> Error msg
  | Ok addr ->
    let deadline = Unix.gettimeofday () +. retry_for in
    let rec attempt () =
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      match Unix.connect fd addr with
      | () -> Ok { fd; reader = Conn.reader fd }
      | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        let transient =
          match err with
          | Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EAGAIN -> true
          | _ -> false
        in
        if transient && Unix.gettimeofday () < deadline then begin
          Thread.delay 0.05;
          attempt ()
        end
        else
          Error
            (Fmt.str "cannot connect to %a: %s" Conn.pp_endpoint endpoint
               (Unix.error_message err))
    in
    attempt ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fd t = t.fd

let reader t = t.reader

let request t line =
  (* Read even when the write fails: a server refusing the connection
     (overloaded) answers and closes before reading our request, and
     that response is still buffered on our side of the socket. *)
  let wrote = Conn.write_line t.fd line in
  match Conn.next_line t.reader with
  | `Line l -> (
    match Jsonx.parse l with
    | Ok json -> Ok json
    | Error msg -> Error ("malformed response: " ^ msg))
  | `Eof ->
    Error
      (if wrote then "connection closed by the server"
       else "connection closed while sending the request")
  | `Oversized -> Error "response exceeded the reader limit"
  | `Stop -> Error "read interrupted"

let check t ?id ?name ?lattice ?binding ?analyses ?self_check ?ni_pairs
    ?ni_max_states ?deadline_ms program =
  request t
    (Protocol.check_line ?id ?name ?lattice ?binding ?analyses ?self_check
       ?ni_pairs ?ni_max_states ?deadline_ms program)

let cert_emit t ?id ?name ?lattice ?binding ?deadline_ms program =
  request t
    (Protocol.cert_emit_line ?id ?name ?lattice ?binding ?deadline_ms program)

let cert_check t ?id ?name ?deadline_ms ~cert program =
  request t (Protocol.cert_check_line ?id ?name ?deadline_ms ~cert program)

let lint t ?id ?name ?deadline_ms program =
  request t (Protocol.lint_line ?id ?name ?deadline_ms program)

let stats t = request t (Protocol.stats_line ())

let ping t =
  match request t (Protocol.ping_line ()) with
  | Ok json when Protocol.response_ok json -> Ok ()
  | Ok json -> (
    match Protocol.response_error json with
    | Some (code, msg) -> Error (code ^ ": " ^ msg)
    | None -> Error "ping refused")
  | Error msg -> Error msg

let with_client ?retry_for endpoint f =
  match connect ?retry_for endpoint with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
