(* Backpressure knobs and the connection gauge. *)

type t = {
  max_request_bytes : int;
  max_connections : int;
  max_pending : int;
  max_inflight : int;
  default_deadline_ms : int;
}

let default =
  {
    max_request_bytes = 1 lsl 20;
    max_connections = 64;
    max_pending = 1024;
    max_inflight = 32;
    default_deadline_ms = 0;
  }

(* The event loops poll with select(2), whose fd sets cannot hold a
   descriptor numbered FD_SETSIZE or above — asking for more
   connections than that produces a raw EINVAL deep inside the loop.
   Validate up front instead. *)
let fd_setsize = 1024

let check_fd_budget ~what n =
  if n >= fd_setsize then
    Error
      (Printf.sprintf
         "%s %d exceeds the select() FD_SETSIZE budget: the connection \
          engines poll with select(2), which only accepts file descriptors \
          below %d. Use a value below %d (or 0 for unlimited, at your own \
          risk)."
         what n fd_setsize fd_setsize)
  else Ok ()

type gauge = { mutex : Mutex.t; mutable value : int; mutable peak : int }

let gauge () = { mutex = Mutex.create (); value = 0; peak = 0 }

let with_lock g f =
  Mutex.lock g.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock g.mutex) f

let try_incr g ~limit =
  with_lock g (fun () ->
      if limit > 0 && g.value >= limit then false
      else begin
        g.value <- g.value + 1;
        if g.value > g.peak then g.peak <- g.value;
        true
      end)

let decr g = with_lock g (fun () -> g.value <- max 0 (g.value - 1))

let value g = with_lock g (fun () -> g.value)

let peak g = with_lock g (fun () -> g.peak)
