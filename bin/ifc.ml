(* The ifc command-line driver.

   Subcommands cover the whole toolkit: CFM certification ([check]),
   the Denning baseline ([denning]), binding inference ([infer]),
   Theorem-1 flow proofs ([prove]), execution ([run]), exhaustive
   exploration ([explore]), dynamic taint monitoring ([taint]),
   noninterference testing ([ni]), parallel corpus certification
   ([batch]), lattice inspection ([lattice]), random program generation
   ([gen]) and a reference card ([rules]). *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Mls = Ifc_lattice.Mls
module Spec = Ifc_lattice.Spec
module Laws = Ifc_lattice.Laws
module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Parser = Ifc_lang.Parser
module Pretty = Ifc_lang.Pretty
module Wellformed = Ifc_lang.Wellformed
module Gen = Ifc_lang.Gen
module Metrics = Ifc_lang.Metrics
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Infer = Ifc_core.Infer
module Report = Ifc_core.Report
module Proof = Ifc_logic.Proof
module Check = Ifc_logic.Check
module Invariance = Ifc_logic_gen.Invariance
module Scheduler = Ifc_exec.Scheduler
module Explore = Ifc_exec.Explore
module Taint = Ifc_exec.Taint
module Ni = Ifc_exec.Noninterference
module Job = Ifc_pipeline.Job
module Cache = Ifc_pipeline.Cache
module Batch = Ifc_pipeline.Batch
module Tier = Ifc_pipeline.Tier
module Telemetry = Ifc_pipeline.Telemetry
module Store = Ifc_store.Store
module Campaign = Ifc_fuzz.Campaign
module Analyze = Ifc_analysis.Analyze
module Cert = Ifc_cert.Cert
module Certcheck = Ifc_cert.Checker
module Linked = Ifc_cert.Linked
module Msummary = Ifc_modsys.Summary
module Mlink = Ifc_modsys.Link
module Mrefine = Ifc_modsys.Refine
module Mdflow = Ifc_modsys.Dflow
module Dwitness = Ifc_dataflow.Witness
module Dsummary = Ifc_dataflow.Dsummary
module Conn = Ifc_server.Conn
module Limits = Ifc_server.Limits
module Server = Ifc_server.Server
module Client = Ifc_server.Client
module Protocol = Ifc_server.Protocol
module Jsonx = Ifc_server.Jsonx
module Loadgen = Ifc_server.Loadgen
module Oracle = Ifc_server.Oracle

open Cmdliner

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Loading helpers *)

let read_file path =
  try Ok (In_channel.with_open_text path In_channel.input_all)
  with Sys_error msg -> Error msg

let load_program path =
  let* src = read_file path in
  let* p =
    Result.map_error (Fmt.str "%s: %a" path Parser.pp_error) (Parser.parse_program src)
  in
  match Wellformed.errors p with
  | [] ->
    List.iter
      (fun issue -> Fmt.epr "%a@." Wellformed.pp_issue issue)
      (Wellformed.check p);
    Ok p
  | errs ->
    Error (Fmt.str "%a" (Fmt.list ~sep:Fmt.cut Wellformed.pp_issue) errs)

(* Built-in schemes are exposed with string elements so every command
   works uniformly over any of them or over a parsed spec file. *)
let load_lattice = function
  | "two" -> Ok (Lattice.stringify Chain.two)
  | "three" -> Ok (Lattice.stringify Chain.three)
  | "four" -> Ok (Lattice.stringify Chain.four)
  | "mls" -> Ok (Lattice.stringify Mls.standard)
  | path when Sys.file_exists path -> Spec.parse_file path
  | other ->
    Error
      (Printf.sprintf
         "unknown lattice %S (use two, three, four, mls, or a spec file path)" other)

let load_linked path =
  let* src = read_file path in
  let* l =
    Result.map_error
      (Fmt.str "%s: %a" path Parser.pp_error)
      (Parser.parse_linked src)
  in
  match Wellformed.linked_errors l with
  | [] -> Ok l
  | errs -> Error (Fmt.str "%a" (Fmt.list ~sep:Fmt.cut Wellformed.pp_issue) errs)

(* A stand-alone module file: parsed with the linked-unit grammar but
   without the dangling-import check — its requires are satisfied by
   whatever unit it is eventually linked into. *)
let load_module path =
  let* src = read_file path in
  let* l =
    Result.map_error
      (Fmt.str "%s: %a" path Parser.pp_error)
      (Parser.parse_linked src)
  in
  match l.Ast.modules with
  | m :: _ -> Ok m
  | [] -> Error (path ^ ": contains no module clause")

let load_binding lat binding_file program =
  match binding_file with
  | Some path ->
    let* text = read_file path in
    Binding.of_spec lat text
  | None -> Binding.of_program lat program

(* ------------------------------------------------------------------ *)
(* Common options *)

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"Program file.")

let lattice_arg =
  Arg.(
    value
    & opt string "two"
    & info [ "l"; "lattice" ] ~docv:"LATTICE"
        ~doc:
          "Classification scheme: $(b,two), $(b,three), $(b,four), $(b,mls), or the \
           path of a lattice spec file.")

let binding_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "b"; "binding" ] ~docv:"FILE"
        ~doc:
          "Static binding file (lines of $(i,name : class)). Defaults to the \
           $(b,class) annotations in the program's declarations; unannotated \
           variables are bound to the lattice bottom.")

let self_check_arg =
  Arg.(
    value & flag
    & info [ "self-check" ]
        ~doc:
          "Use the literal Figure 2 reading of the composition rule (j <= i), which \
           additionally bounds each statement's own global flow by its own mod.")

let strategy_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ "rr" ] | [ "round-robin" ] -> Ok `Round_robin
    | [ "leftmost" ] -> Ok `Leftmost
    | [ "random" ] -> Ok (`Random 0)
    | [ "random"; seed ] -> (
      match int_of_string_opt seed with
      | Some n -> Ok (`Random n)
      | None -> Error (`Msg "random seed must be an integer"))
    | _ -> Error (`Msg "strategy is rr, leftmost, or random[:SEED]")
  in
  let print ppf = function
    | `Round_robin -> Fmt.string ppf "rr"
    | `Leftmost -> Fmt.string ppf "leftmost"
    | `Random n -> Fmt.pf ppf "random:%d" n
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Round_robin
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:"Scheduler: $(b,rr), $(b,leftmost), or $(b,random)[:SEED].")

let inputs_arg =
  let parse s =
    match String.split_on_char '=' s with
    | [ name; v ] -> (
      match int_of_string_opt v with
      | Some n -> Ok (name, n)
      | None -> Error (`Msg "input value must be an integer"))
    | _ -> Error (`Msg "inputs are NAME=VALUE")
  in
  let print ppf (n, v) = Fmt.pf ppf "%s=%d" n v in
  Arg.(
    value
    & opt_all (conv (parse, print)) []
    & info [ "i"; "input" ] ~docv:"NAME=VALUE" ~doc:"Initial value for a variable.")

let fuel_arg =
  Arg.(
    value & opt int 100_000
    & info [ "fuel" ] ~docv:"N" ~doc:"Maximum number of indivisible steps.")

let exit_of_result = function
  | Ok () -> 0
  | Error msg ->
    Fmt.epr "ifc: %s@." msg;
    1

(* Exit code 2 distinguishes "analysis ran, program rejected". *)
let exit_of_verdict = function
  | Ok true -> 0
  | Ok false -> 2
  | Error msg ->
    Fmt.epr "ifc: %s@." msg;
    1

(* ------------------------------------------------------------------ *)
(* check / denning *)

let run_check lattice_name binding_file self_check requirements flow_sensitive
    modular explain path =
  if modular then
    exit_of_verdict
      (let* lat = load_lattice lattice_name in
       let* l = load_linked path in
       let* outcome = Mlink.certify ~lattice:lat l in
       Fmt.pr "modular certification: %s (%d modules%s)@."
         (if outcome.Mlink.ok then "CERTIFIED" else "REJECTED")
         (List.length l.Ast.modules)
         (match l.Ast.main with None -> "" | Some _ -> " + main");
       List.iter (fun i -> Fmt.pr "  %s@." i) outcome.Mlink.issues;
       Ok outcome.Mlink.ok)
  else
  exit_of_verdict
    (let* lat = load_lattice lattice_name in
     let* p = load_program path in
     let* binding = load_binding lat binding_file p in
     let result = Cfm.analyze_program ~self_check binding p in
     Fmt.pr "%a@." (Report.pp_result ~program:p lat) result;
     if explain && not result.Cfm.certified then begin
       match Dwitness.explain ~self_check binding p with
       | Some w -> Fmt.pr "@.%a@." Dwitness.pp w
       | None -> ()
     end;
     if requirements then begin
       Fmt.pr "@.certification requires:@.%a@." Report.pp_requirements
         (Infer.constraints ~self_check p.Ast.body)
     end;
     if flow_sensitive then begin
       let fs = Ifc_core.Flow_sensitive.analyze binding p.Ast.body in
       Fmt.pr "@.flow-sensitive verdict: %a@." Report.pp_verdict
         fs.Ifc_core.Flow_sensitive.accepted;
       List.iter
         (fun (v, c) ->
           Fmt.pr "  final class of %s is %s, above its binding %s@." v
             (lat.Lattice.to_string c)
             (lat.Lattice.to_string (Binding.sbind binding v)))
         fs.Ifc_core.Flow_sensitive.violations;
       Ok fs.Ifc_core.Flow_sensitive.accepted
     end
     else Ok result.Cfm.certified)

let check_cmd =
  let requirements =
    Arg.(
      value & flag
      & info [ "requirements" ]
          ~doc:"Also print the symbolic conditions under which certification succeeds.")
  in
  let flow_sensitive =
    Arg.(
      value & flag
      & info [ "flow-sensitive" ]
          ~doc:
            "Also run the flow-sensitive certifier (tracks current classes through \
             assignments; accepts strictly more programs) and use its verdict for \
             the exit code.")
  in
  let modular =
    Arg.(
      value & flag
      & info [ "modular" ]
          ~doc:
            "Treat $(i,PROGRAM) as a linked unit (module clauses plus an \
             optional main program) and certify it compositionally from \
             per-module summaries — equivalent verdict to whole-program \
             CFM on the elaboration, without re-walking module bodies at \
             link time. See also $(b,ifc modsys).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "On rejection, print a flow witness: the source variables \
             whose classes caused the violation, the statements the flow \
             traversed, and the failed check — replayed and validated \
             before printing.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Certify a program with the Concurrent Flow Mechanism (CFM).")
    Term.(
      const run_check $ lattice_arg $ binding_arg $ self_check_arg $ requirements
      $ flow_sensitive $ modular $ explain $ program_arg)

let run_denning lattice_name binding_file reject path =
  exit_of_verdict
    (let* lat = load_lattice lattice_name in
     let* p = load_program path in
     let* binding = load_binding lat binding_file p in
     let on_concurrency = if reject then `Reject else `Ignore in
     let result = Denning.analyze_program ~on_concurrency binding p in
     Fmt.pr "%a@." (Report.pp_denning lat) result;
     Ok result.Denning.certified)

let denning_cmd =
  let reject =
    Arg.(
      value & flag
      & info [ "reject-concurrency" ]
          ~doc:
            "Historically faithful mode: refuse programs containing cobegin, wait or \
             signal instead of ignoring global flows.")
  in
  Cmd.v
    (Cmd.info "denning"
       ~doc:"Certify with the Denning & Denning baseline (no global flows).")
    Term.(const run_denning $ lattice_arg $ binding_arg $ reject $ program_arg)

(* ------------------------------------------------------------------ *)
(* lint *)

let run_lint json explain no_prune modular store_dir lattice_name binding_file
    path =
  exit_of_verdict
    (let* p, presult =
       if modular then
         (* The summary path: per-module dataflow facts resolve from the
            store (or are computed once and persisted); only main is
            analyzed fresh, and the facts re-apply to the elaboration
            without re-walking neighbour bodies. *)
         let* l = load_linked path in
         let* store =
           match store_dir with
           | None -> Ok None
           | Some dir ->
             let* s = Store.open_ dir in
             Ok (Some s)
         in
         let outcome = Mdflow.linked ?store l in
         Fmt.epr "dataflow: %d summaries computed, %d reused from store@."
           outcome.Mdflow.computed outcome.Mdflow.reused;
         let p = Mlink.elaborate l in
         Ok (p, Some (Dsummary.apply p outcome.Mdflow.facts))
       else
         let* p = load_program path in
         Ok (p, None)
     in
     let report =
       match presult with
       | Some presult when not no_prune -> Analyze.run ~prune:presult p
       | _ -> Analyze.run ~dataflow:(not no_prune) p
     in
     let* witness =
       if not explain then Ok None
       else
         let* lat = load_lattice lattice_name in
         let* binding = load_binding lat binding_file p in
         Ok (Dwitness.explain binding p)
     in
     if json then begin
       let extra =
         if not explain then []
         else
           [
             ( "witness",
               match witness with
               | None -> Telemetry.Null
               | Some w ->
                 let span s = Fmt.str "%a" Loc.pp s in
                 Telemetry.Obj
                   [
                     ("mode", Telemetry.String (Dwitness.mode_name w.Dwitness.w_mode));
                     ( "source",
                       Telemetry.List
                         (List.map (fun v -> Telemetry.String v) w.Dwitness.w_source)
                     );
                     ( "steps",
                       Telemetry.List
                         (List.map
                            (fun (st : Dwitness.step) ->
                              Telemetry.Obj
                                [
                                  ("span", Telemetry.String (span st.Dwitness.w_span));
                                  ("var", Telemetry.String st.Dwitness.w_var);
                                  ("rule", Telemetry.String st.Dwitness.w_rule);
                                ])
                            w.Dwitness.w_steps) );
                     ("sink_span", Telemetry.String (span w.Dwitness.w_sink_span));
                     ("sink_rule", Telemetry.String w.Dwitness.w_sink_rule);
                     ( "sink_var",
                       match w.Dwitness.w_sink_var with
                       | Some v -> Telemetry.String v
                       | None -> Telemetry.Null );
                   ] );
           ]
       in
       Fmt.pr "%s@." (Job.lint_report_json ~extra report)
     end
     else begin
       Fmt.pr "%a" Analyze.pp_report report;
       let errors, warnings =
         List.fold_left
           (fun (e, w) (f : Ifc_analysis.Finding.t) ->
             match f.Ifc_analysis.Finding.severity with
             | Ifc_analysis.Finding.Error -> (e + 1, w)
             | Ifc_analysis.Finding.Warning -> (e, w + 1))
           (0, 0) report.Analyze.findings
       in
       let claims = report.Analyze.claims in
       let stats = report.Analyze.stats in
       Fmt.pr "%d error%s, %d warning%s over %d statements (%d accesses, %d \
               parallel pairs)@."
         errors
         (if errors = 1 then "" else "s")
         warnings
         (if warnings = 1 then "" else "s")
         stats.Analyze.statements stats.Analyze.accesses stats.Analyze.pairs;
       Fmt.pr "claims: race-free %b, deadlock-free %b, must-block %b, \
               chan-race-free %b, chan-deadlock-free %b@."
         claims.Analyze.race_free claims.Analyze.deadlock_free
         claims.Analyze.must_block claims.Analyze.chan_race_free
         claims.Analyze.chan_deadlock_free;
       List.iter
         (fun c -> Fmt.pr "%a@." Ifc_chan.Lint.pp_summary c)
         report.Analyze.channels;
       List.iter
         (fun (pr : Ifc_dataflow.Prune.pruned) ->
           Fmt.pr "pruned: %s at %a (guard at %a)@."
             (Ifc_dataflow.Prune.arm_name pr.Ifc_dataflow.Prune.p_arm)
             Loc.pp pr.Ifc_dataflow.Prune.p_span Loc.pp
             pr.Ifc_dataflow.Prune.p_stmt_span)
         report.Analyze.pruned;
       if explain then begin
         match witness with
         | Some w -> Fmt.pr "%a@." Dwitness.pp w
         | None -> Fmt.pr "flow explanation: certified; no witness to show@."
       end
     end;
     Ok (report.Analyze.findings = []))

let lint_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the report as one JSON object (findings, claims, stats).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Also certify the program against $(b,--lattice)/$(b,--binding) \
             (annotations by default) and, on rejection, print a flow \
             witness: source variables, the statements the flow traversed, \
             and the failed check. With $(b,--json) the witness is an \
             additional top-level field.")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Disable infeasible-path pruning and the dataflow lints: \
             analyze the program exactly as written (the pre-dataflow \
             behaviour, kept for differential comparison).")
  in
  let modular =
    Arg.(
      value & flag
      & info [ "modular" ]
          ~doc:
            "Treat $(i,PROGRAM) as a linked unit and lint its elaboration \
             with per-module dataflow facts resolved from summaries \
             ($(b,--store)) instead of re-walking module bodies.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "With $(b,--modular): persist and reuse per-module dataflow \
             summaries keyed by structural digest.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a program's concurrency structure: \
          may-happen-in-parallel data races, guaranteed semaphore and \
          channel deadlocks, lost signals, orphan messages, \
          conditional-delay imbalances, constant guards, statically \
          unreachable branches, and dead stores. Exit code 2 when there \
          are findings.")
    Term.(
      const run_lint $ json $ explain $ no_prune $ modular $ store_arg
      $ lattice_arg $ binding_arg $ program_arg)

(* ------------------------------------------------------------------ *)
(* infer *)

let run_infer lattice_name fixes path =
  exit_of_verdict
    (let* lat = load_lattice lattice_name in
     let* p = load_program path in
     let* fixed =
       List.fold_left
         (fun acc (name, cls) ->
           let* acc = acc in
           let* c = lat.Lattice.of_string cls in
           Ok ((name, c) :: acc))
         (Ok []) fixes
     in
     match Infer.infer lat ~fixed p with
     | Ok binding ->
       Fmt.pr "least certifying binding:@.%a@." Binding.pp binding;
       Ok true
     | Error conflict ->
       Fmt.pr
         "unsatisfiable: %a forces %s, but %s is fixed at %s@.(from %a at %a)@."
         Infer.pp_constr conflict.Infer.constr
         (lat.Lattice.to_string conflict.Infer.actual)
         conflict.Infer.constr.Infer.rhs
         (lat.Lattice.to_string conflict.Infer.allowed)
         Fmt.string
         (Cfm.rule_name conflict.Infer.constr.Infer.rule)
         Ifc_lang.Loc.pp conflict.Infer.constr.Infer.span;
       Ok false)

let infer_cmd =
  let fixes =
    let parse s =
      match String.index_opt s '=' with
      | Some i ->
        Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
      | None -> Error (`Msg "fixed bindings are NAME=CLASS")
    in
    let print ppf (n, c) = Fmt.pf ppf "%s=%s" n c in
    Arg.(
      value
      & opt_all (conv (parse, print)) []
      & info [ "f"; "fix" ] ~docv:"NAME=CLASS" ~doc:"Hold a variable at a fixed class.")
  in
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Infer the least static binding certifying the program, or report why none exists.")
    Term.(const run_infer $ lattice_arg $ fixes $ program_arg)

(* ------------------------------------------------------------------ *)
(* prove / cert *)

let write_file path text =
  try
    Ok
      (Out_channel.with_open_bin path (fun oc ->
           Out_channel.output_string oc text))
  with Sys_error msg -> Error msg

(* Build the Theorem-1 proof, serialize it, and refuse to hand out any
   certificate the independent checker would not accept: the emitted
   bytes are re-parsed and re-validated before they leave the process. *)
let emit_certificate binding p =
  match Invariance.witness binding p.Ast.body with
  | Error errors -> Ok (Error errors)
  | Ok proof -> (
    let cert = Cert.of_proof ~binding ~program:p proof in
    let text = Cert.to_string cert in
    match Cert.parse text with
    | Error e ->
      Error (Fmt.str "emitted certificate does not re-parse: %a" Cert.pp_parse_error e)
    | Ok parsed -> (
      match Certcheck.check parsed p with
      | Ok () -> Ok (Ok text)
      | Error (f :: _) ->
        Error
          (Fmt.str "emitted certificate fails the independent checker: %a"
             Certcheck.pp_failure f)
      | Error [] -> Error "emitted certificate fails the independent checker"))

let run_prove lattice_name binding_file print_proof emit_cert path =
  exit_of_verdict
    (let* lat = load_lattice lattice_name in
     let* p = load_program path in
     let* binding = load_binding lat binding_file p in
     match Invariance.witness binding p.Ast.body with
     | Ok proof ->
       Fmt.pr "flow proof found: %d rule applications, completely invariant@."
         (Proof.size proof);
       if print_proof then Fmt.pr "%a@." (Proof.pp lat) proof;
       let* () =
         match emit_cert with
         | None -> Ok ()
         | Some out -> (
           match emit_certificate binding p with
           | Error msg -> Error msg
           | Ok (Error _) -> Error "proof found but certificate emission failed"
           | Ok (Ok text) ->
             let* () = write_file out text in
             Fmt.pr "certificate written to %s (%d bytes)@." out
               (String.length text);
             Ok ())
       in
       Ok true
     | Error errors ->
       Fmt.pr "no completely invariant flow proof (program not certifiable):@.%a@."
         (Fmt.list ~sep:Fmt.cut Check.pp_error)
         errors;
       Ok false)

let prove_cmd =
  let print_proof =
    Arg.(value & flag & info [ "print-proof" ] ~doc:"Print the full derivation.")
  in
  let emit_cert =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-cert" ] ~docv:"FILE"
          ~doc:"Also write the proof as a checkable certificate to $(docv).")
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Build and check the Theorem-1 completely invariant flow proof (succeeds iff \
          CFM certifies).")
    Term.(
      const run_prove $ lattice_arg $ binding_arg $ print_proof $ emit_cert
      $ program_arg)

let run_cert_emit lattice_name binding_file out path =
  exit_of_verdict
    (let* lat = load_lattice lattice_name in
     let* p = load_program path in
     let* binding = load_binding lat binding_file p in
     let* outcome = emit_certificate binding p in
     match outcome with
     | Error errors ->
       Fmt.pr "no certificate: program not certifiable:@.%a@."
         (Fmt.list ~sep:Fmt.cut Check.pp_error)
         errors;
       Ok false
     | Ok text -> (
       match out with
       | None ->
         print_string text;
         Ok true
       | Some out ->
         let* () = write_file out text in
         Fmt.pr "certificate written to %s (%d bytes)@." out (String.length text);
         Ok true))

(* Version-2 (linked) certificates route here: the program file is a
   linked unit and the checker replays summaries instead of proof
   nodes. The --lattice/--binding cross-checks are version-1 concepts
   (a linked certificate's binding is validated against the unit
   itself). *)
let run_cert_check_linked cert_file text component_files path =
  exit_of_verdict
    (let* l = load_linked path in
     match Linked.parse text with
     | Error e -> Error (Fmt.str "%s: %a" cert_file Cert.pp_parse_error e)
     | Ok cert ->
       let* components =
         List.fold_left
           (fun acc f ->
             let* acc = acc in
             let* c = read_file f in
             Ok (c :: acc))
           (Ok []) component_files
         |> Result.map List.rev
       in
       (match Linked.check ~components cert l with
       | Ok () ->
         Fmt.pr "certificate valid: %d summary nodes, %d bound variables%s@."
           (List.length cert.Linked.summaries)
           (List.length cert.Linked.binds)
           (if components = [] then ""
            else Printf.sprintf ", %d component certificates re-checked"
                (List.length components));
         Ok true
       | Error (first :: _ as failures) ->
         Fmt.pr "certificate rejected (%d failures), first: %s: %s: %s@."
           (List.length failures) first.Linked.path first.Linked.rule
           first.Linked.reason;
         Ok false
       | Error [] -> Ok false))

let run_cert_check lattice_name binding_file cert_file component_files path =
  match
    let* text = read_file cert_file in
    Ok (text, Linked.sniff_version text)
  with
  | Error msg ->
    Fmt.epr "ifc: %s@." msg;
    1
  | Ok (text, Some 2) -> run_cert_check_linked cert_file text component_files path
  | Ok (text, _) ->
  exit_of_verdict
    (let* p = load_program path in
     match Cert.parse text with
     | Error e -> Error (Fmt.str "%s: %a" cert_file Cert.pp_parse_error e)
     | Ok cert ->
       (* Optional cross-checks of the embedded scheme and binding
          against what the caller expects. *)
       let* () =
         match lattice_name with
         | None -> Ok ()
         | Some name ->
           let* expected = load_lattice name in
           if String.equal (Spec.to_text expected) (Spec.to_text cert.Cert.lattice)
           then Ok ()
           else
             Error
               (Fmt.str "certificate lattice %S differs from expected %S"
                  cert.Cert.lattice.Lattice.name expected.Lattice.name)
       in
       let* mismatches =
         match binding_file with
         | None -> Ok []
         | Some bf ->
           let* btext = read_file bf in
           let* expected = Binding.of_spec cert.Cert.lattice btext in
           Ok
             (List.filter
                (fun (v, cls) ->
                  not
                    (String.equal cls
                       (cert.Cert.lattice.Lattice.to_string
                          (Binding.sbind expected v))))
                cert.Cert.binds)
       in
       (match mismatches with
       | (v, cls) :: _ ->
         Fmt.pr "certificate rejected: binding mismatch: %s is %s in the certificate@."
           v cls;
         Ok false
       | [] -> (
         match Certcheck.check cert p with
         | Ok () ->
           Fmt.pr "certificate valid: %d nodes, %d bound variables@."
             (Cert.node_count cert)
             (List.length cert.Cert.binds);
           Ok true
         | Error (first :: _ as failures) ->
           Fmt.pr "certificate rejected (%d failures), first: %a@."
             (List.length failures) Certcheck.pp_failure first;
           Ok false
         | Error [] -> Ok false)))

let cert_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the certificate to $(docv) instead of standard output.")
  in
  let cert_file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CERT" ~doc:"Certificate file.")
  in
  let cert_program_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"PROGRAM" ~doc:"Program file the certificate is for.")
  in
  let cross_lattice_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "l"; "lattice" ] ~docv:"LATTICE"
          ~doc:
            "Cross-check that the certificate's embedded scheme matches \
             $(docv) (a built-in name or spec file).")
  in
  let cross_binding_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "b"; "binding" ] ~docv:"FILE"
          ~doc:
            "Cross-check that the certificate's recorded binding matches \
             $(docv).")
  in
  let component_arg =
    Arg.(
      value
      & opt_all file []
      & info [ "component" ] ~docv:"CERT"
          ~doc:
            "With a version-2 (linked) certificate: a component \
             certificate to re-check against its module's import-closed \
             body (repeatable). Each must match some summary node's \
             recorded certificate digest.")
  in
  let emit =
    Cmd.v
      (Cmd.info "emit"
         ~doc:
           "Build the Theorem-1 flow proof and write it as a certificate \
            (self-checked before emission; exit 2 when not certifiable).")
      Term.(const run_cert_emit $ lattice_arg $ binding_arg $ out_arg $ program_arg)
  in
  let check =
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Independently validate a certificate against a program: digest, \
            every Figure 1 rule instance, entailment side-conditions, \
            interference freedom and complete invariance. Exit 2 with the \
            first bad node's path on rejection; exit 1 on malformed input.")
      Term.(
        const run_cert_check $ cross_lattice_arg $ cross_binding_arg
        $ cert_file_arg $ component_arg $ cert_program_arg)
  in
  Cmd.group
    (Cmd.info "cert" ~doc:"Emit and independently re-check proof certificates.")
    [ emit; check ]

(* ------------------------------------------------------------------ *)
(* run / explore *)

let run_run strategy inputs fuel trace path =
  exit_of_result
    (let* p = load_program path in
     let cfg = Ifc_exec.Step.init p ~inputs () in
     if trace then begin
       let outcome, steps = Scheduler.run_traced ~fuel ~strategy cfg in
       List.iteri
         (fun i (label, _) -> Fmt.pr "%4d %a@." (i + 1) Ifc_exec.Step.pp_label label)
         steps;
       Fmt.pr "%a@." Scheduler.pp_outcome outcome
     end
     else Fmt.pr "%a@." Scheduler.pp_outcome (Scheduler.run ~fuel ~strategy cfg);
     Ok ())

let run_cmd =
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print every indivisible action.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a program under a scheduler.")
    Term.(const run_run $ strategy_arg $ inputs_arg $ fuel_arg $ trace $ program_arg)

(* BFS over the configuration graph, emitting a Graphviz digraph whose
   nodes are states (terminal = doublecircle, deadlock = octagon) and
   whose edges are labelled with the action taken. *)
let state_graph_dot ~max_states cfg0 =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "digraph states {\n  rankdir=LR;\n  node [shape=circle,label=\"\"];\n";
  let seen = Hashtbl.create 64 in
  let id cfg =
    let k = Ifc_exec.Step.key cfg in
    match Hashtbl.find_opt seen k with
    | Some i -> (i, false)
    | None ->
      let i = Hashtbl.length seen in
      Hashtbl.add seen k i;
      (i, true)
  in
  let queue = Queue.create () in
  let i0, _ = id cfg0 in
  Buffer.add_string buf (Printf.sprintf "  n%d [shape=point];\n" i0);
  Queue.add cfg0 queue;
  while (not (Queue.is_empty queue)) && Hashtbl.length seen < max_states do
    let cfg = Queue.pop queue in
    let i, _ = id cfg in
    if Ifc_exec.Step.is_terminated cfg then
      Buffer.add_string buf (Printf.sprintf "  n%d [shape=doublecircle];\n" i)
    else
      match Ifc_exec.Step.enabled cfg with
      | Error msg ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=box,label=\"fault: %s\"];\n" i msg)
      | Ok [] -> Buffer.add_string buf (Printf.sprintf "  n%d [shape=octagon];\n" i)
      | Ok choices ->
        List.iter
          (fun ch ->
            let j, fresh = id ch.Ifc_exec.Step.next in
            Buffer.add_string buf
              (Fmt.str "  n%d -> n%d [label=\"%a\"];\n" i j Ifc_exec.Step.pp_label
                 ch.Ifc_exec.Step.label);
            if fresh then Queue.add ch.Ifc_exec.Step.next queue)
          choices
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let run_explore inputs max_states dot path =
  exit_of_result
    (let* p = load_program path in
     if dot then begin
       Fmt.pr "%s" (state_graph_dot ~max_states (Ifc_exec.Step.init p ~inputs ()));
       Ok ()
     end
     else begin
       let summary = Explore.explore_program ~max_states ~inputs p in
       Fmt.pr "%a@." Explore.pp summary;
       List.iteri
         (fun i cfg ->
           Fmt.pr "terminal %d: %a@." (i + 1) Ifc_exec.Eval.pp_store
             cfg.Ifc_exec.Step.store)
         summary.Explore.terminals;
       Ok ()
     end)

let explore_cmd =
  let max_states =
    Arg.(
      value & opt int 20_000
      & info [ "max-states" ] ~docv:"N" ~doc:"State-space exploration bound.")
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:"Emit the reachable state graph as a Graphviz digraph instead of a \
                summary.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Exhaustively explore all interleavings (bounded); report terminals, \
             deadlocks and possible divergence.")
    Term.(const run_explore $ inputs_arg $ max_states $ dot $ program_arg)

(* ------------------------------------------------------------------ *)
(* taint / ni *)

let run_taint lattice_name binding_file strategy inputs fuel path =
  exit_of_verdict
    (let* lat = load_lattice lattice_name in
     let* p = load_program path in
     let* binding = load_binding lat binding_file p in
     let report = Taint.run ~fuel ~inputs ~strategy binding p in
     Fmt.pr "%a@." (Taint.pp_report lat) report;
     Ok (report.Taint.violations = []))

let taint_cmd =
  Cmd.v
    (Cmd.info "taint"
       ~doc:
         "Run under the dynamic information-state monitor and report binding \
          violations of the executed schedule.")
    Term.(
      const run_taint $ lattice_arg $ binding_arg $ strategy_arg $ inputs_arg $ fuel_arg
      $ program_arg)

let run_ni lattice_name binding_file observer pairs sensitive max_states path =
  exit_of_verdict
    (let* lat = load_lattice lattice_name in
     let* p = load_program path in
     let* binding = load_binding lat binding_file p in
     let* observer =
       match observer with
       | None -> Ok lat.Lattice.bottom
       | Some s -> lat.Lattice.of_string s
     in
     let termination = if sensitive then `Sensitive else `Insensitive in
     let r = Ni.test ~pairs ~max_states ~termination ~observer binding p in
     Fmt.pr "pairs tested: %d, skipped: %d, violations: %d@." r.Ni.pairs_tested
       r.Ni.pairs_skipped
       (List.length r.Ni.violations);
     List.iter (fun v -> Fmt.pr "%a@." Ni.pp_violation v) r.Ni.violations;
     Ok (Ni.secure r))

let ni_cmd =
  let observer =
    Arg.(
      value
      & opt (some string) None
      & info [ "observer" ] ~docv:"CLASS"
          ~doc:"Observation level (default: the lattice bottom).")
  in
  let pairs =
    Arg.(value & opt int 16 & info [ "pairs" ] ~docv:"N" ~doc:"Input pairs to test.")
  in
  let sensitive =
    Arg.(
      value & flag
      & info [ "termination-sensitive" ]
          ~doc:"Treat deadlock/divergence as observable (stronger than the paper's model).")
  in
  let max_states =
    Arg.(
      value & opt int 20_000
      & info [ "max-states" ] ~docv:"N" ~doc:"Per-run exploration bound.")
  in
  Cmd.v
    (Cmd.info "ni"
       ~doc:"Empirical noninterference test over all interleavings of random low-equal \
             input pairs.")
    Term.(
      const run_ni $ lattice_arg $ binding_arg $ observer $ pairs $ sensitive
      $ max_states $ program_arg)

(* ------------------------------------------------------------------ *)
(* batch *)

let parse_analyses ~ni_pairs ~ni_max_states csv =
  let names =
    String.split_on_char ',' csv |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  match names with
  | [] -> Error "empty --analyses list"
  | names ->
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* a = Job.analysis_of_string ~ni_pairs ~ni_max_states name in
        Ok (a :: acc))
      (Ok []) names
    |> Result.map List.rev

(* Random bindings for a generated corpus, matching the bench harness:
   every variable gets a uniformly drawn class, deterministically from
   the corpus seed. *)
let random_binding rng lat stmt =
  let arr = Array.of_list lat.Lattice.elements in
  Binding.make lat
    (List.map
       (fun v -> (v, arr.(Ifc_support.Prng.int rng (Array.length arr))))
       (Ifc_support.Sset.elements (Ifc_lang.Vars.all_vars stmt)))

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* File name for one job's certificate: the job name reduced to safe
   characters, made unique by a digest prefix. *)
let cert_file_name (r : Job.result) =
  let safe =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
        | _ -> '_')
      (Filename.basename r.Job.job_name)
  in
  Printf.sprintf "%s-%s.cert" safe (String.sub r.Job.job_digest 0 12)

let write_batch_certs dir results =
  mkdirs dir;
  let written =
    List.fold_left
      (fun acc (r : Job.result) ->
        match r.Job.outcome with
        | Error _ -> acc
        | Ok analyses -> (
          match
            List.find_opt
              (fun (ar : Job.analysis_result) -> ar.Job.artifact <> None)
              analyses
          with
          | Some { Job.artifact = Some text; _ } ->
            let path = Filename.concat dir (cert_file_name r) in
            if Sys.file_exists path then acc
            else begin
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc text);
              acc + 1
            end
          | _ -> acc))
      0 results
  in
  Fmt.pr "certificates written: %d (to %s)@." written dir

let run_batch lattice_name binding_file self_check jobs use_cache cache_size
    store_dir log_file analyses_csv ni_pairs ni_max_states gen_n gen_size
    gen_seed gen_sequential repeat verbose emit_certs files =
  let result =
    let* () =
      if jobs < 1 then Error "--jobs must be at least 1" else Ok ()
    in
    let* lat = load_lattice lattice_name in
    let* analyses = parse_analyses ~ni_pairs ~ni_max_states analyses_csv in
    let* file_specs =
      List.fold_left
        (fun acc path ->
          let* acc = acc in
          let* p = load_program path in
          let* binding = load_binding lat binding_file p in
          Ok ((path, p, binding) :: acc))
        (Ok []) files
      |> Result.map List.rev
    in
    let gen_specs =
      if gen_n <= 0 then []
      else begin
        let rng = Ifc_support.Prng.create gen_seed in
        let cfg = if gen_sequential then Gen.sequential else Gen.default in
        List.init gen_n (fun i ->
            let p = Gen.program rng cfg ~size:gen_size in
            let binding = random_binding rng lat p.Ast.body in
            (Printf.sprintf "gen:%d:%d" gen_seed i, p, binding))
      end
    in
    let base = file_specs @ gen_specs in
    if base = [] then Error "no programs to certify (give files and/or --gen N)"
    else begin
      let corpus = List.concat (List.init (max 1 repeat) (fun _ -> base)) in
      let specs =
        List.mapi
          (fun i (name, p, binding) ->
            Job.make ~id:i ~name ~lattice:lat ~binding ~analyses ~self_check p)
          corpus
      in
      (* --store implies the memory cache: the tier layers under it, and
         warm-start preloading needs somewhere to put the hot set. *)
      let cache =
        if use_cache || store_dir <> None then
          Some (Cache.create ~capacity:cache_size ())
        else None
      in
      let* store =
        match store_dir with
        | None -> Ok None
        | Some dir ->
          let* s = Store.open_ dir in
          let tier = Store.tier s in
          (match cache with
          | Some cache ->
            Fmt.pr "store: preloaded %d entries from %s@."
              (tier.Tier.preload cache) dir
          | None -> ());
          Ok (Some tier)
      in
      (* with_sink closes (and flushes) the log on every exit path, so
         a raising batch still leaves a whole-line JSONL file. *)
      let run_with sink = Batch.run ~jobs ?cache ?store ?sink specs in
      let* summary =
        match log_file with
        | None -> Ok (run_with None)
        | Some path -> (
          try Telemetry.with_sink path (fun sink -> Ok (run_with (Some sink)))
          with Sys_error msg -> Error msg)
      in
      if verbose then
        List.iter
          (fun r ->
            Fmt.pr "[%d] %s %s%s@." r.Job.job_id r.Job.job_name
              (Job.verdict_string r)
              (if r.Job.from_cache then " (cached)" else ""))
          summary.Batch.results;
      List.iter
        (fun r ->
          match r.Job.outcome with
          | Error msg -> Fmt.epr "ifc: job %d (%s) errored: %s@." r.Job.job_id
                           r.Job.job_name msg
          | Ok _ -> ())
        summary.Batch.results;
      Fmt.pr "%a" Batch.pp_summary summary;
      (match emit_certs with
      | Some dir -> write_batch_certs dir summary.Batch.results
      | None -> ());
      Ok summary
    end
  in
  match result with
  | Error msg ->
    Fmt.epr "ifc: %s@." msg;
    1
  | Ok s -> if s.Batch.errored > 0 then 2 else 0

let batch_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"PROGRAM" ~doc:"Program files.")
  in
  let jobs =
    Arg.(
      value
      & opt int (max 1 (Domain.recommended_domain_count ()))
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (defaults to the recommended domain count).")
  in
  let cache =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Enable the content-addressed result cache: jobs whose program, \
             binding, lattice and analyses digest-match an earlier job reuse \
             its results.")
  in
  let cache_size =
    Arg.(
      value & opt int 4096
      & info [ "cache-size" ] ~docv:"N" ~doc:"Cache capacity (LRU eviction).")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Layer a persistent content-addressed store under the memory \
             cache (implies $(b,--cache)): previously certified digests are \
             answered from disk, computed results are persisted, and the \
             hottest stored generation is preloaded at startup. Manage \
             $(docv) with $(b,ifc store stats|verify|gc).")
  in
  let log_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE.jsonl"
          ~doc:
            "Append one JSON object per job (and a final summary event) to \
             $(docv) for audit/replay.")
  in
  let analyses =
    Arg.(
      value & opt string "cfm"
      & info [ "analyses" ] ~docv:"LIST"
          ~doc:
            "Comma-separated analyses to run per program: $(b,denning), \
             $(b,cfm), $(b,prove), $(b,cert), $(b,ni).")
  in
  let emit_certs =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-certs" ] ~docv:"DIR"
          ~doc:
            "With the $(b,cert) analysis: write every emitted certificate to \
             $(docv) as $(i,name)-$(i,digest).cert (cache hits included — \
             the certificate rides in the cached result).")
  in
  let ni_pairs =
    Arg.(
      value & opt int 8
      & info [ "ni-pairs" ] ~docv:"N" ~doc:"Input pairs for the ni analysis.")
  in
  let ni_max_states =
    Arg.(
      value & opt int 20_000
      & info [ "ni-max-states" ] ~docv:"N"
          ~doc:"Per-run exploration bound for the ni analysis.")
  in
  let gen_n =
    Arg.(
      value & opt int 0
      & info [ "gen" ] ~docv:"N"
          ~doc:
            "Also certify $(docv) generated programs with seeded random \
             bindings (reproducible per --seed).")
  in
  let gen_size =
    Arg.(
      value & opt int 20
      & info [ "size" ] ~docv:"N" ~doc:"Target statement count for --gen.")
  in
  let gen_seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed for --gen.")
  in
  let gen_sequential =
    Arg.(
      value & flag
      & info [ "sequential" ] ~doc:"Generate without concurrency constructs.")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"K"
          ~doc:
            "Process the whole corpus $(docv) times (with --cache, later \
             rounds hit).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Print one line per job, in submission order.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Certify a corpus of programs in parallel over a domain pool, with an \
          optional result cache and JSONL telemetry. Exit code 2 if any job \
          errored (rejections are reported in the summary, not the exit code).")
    Term.(
      const run_batch $ lattice_arg $ binding_arg $ self_check_arg $ jobs $ cache
      $ cache_size $ store_dir $ log_file $ analyses $ ni_pairs $ ni_max_states
      $ gen_n $ gen_size $ gen_seed $ gen_sequential $ repeat $ verbose
      $ emit_certs $ files)

(* ------------------------------------------------------------------ *)
(* fuzz *)

let run_fuzz cases refine_cases seed jobs size_min size_max ni_pairs max_states
    time_budget shrink_budget corpus_dir fuzz_store_dir log_file quiet =
  let config =
    {
      Campaign.cases;
      refine_cases;
      seed;
      jobs;
      size_min;
      size_max;
      ni_pairs;
      max_states;
      time_budget;
      shrink_budget;
      corpus_dir;
      store_dir = fuzz_store_dir;
      (* Hidden test hooks: inject one case with a forced bogus CFM
         verdict, a forced bogus certificate round-trip verdict, forced
         all-safe concurrency-analysis claims, or a pre-planted stale
         store entry, so the end-to-end inversion paths (detect, shrink,
         persist, exit 2) stay exercised. *)
      plant_inversion = Sys.getenv_opt "IFC_FUZZ_PLANT_INVERSION" <> None;
      plant_cert_inversion =
        Sys.getenv_opt "IFC_FUZZ_PLANT_CERT_INVERSION" <> None;
      plant_lint_unsound =
        Sys.getenv_opt "IFC_FUZZ_PLANT_LINT_UNSOUND" <> None;
      plant_chan_unsound =
        Sys.getenv_opt "IFC_FUZZ_PLANT_CHAN_UNSOUND" <> None;
      plant_store_stale =
        Sys.getenv_opt "IFC_FUZZ_PLANT_STORE_STALE" <> None;
      plant_dataflow_unsound =
        Sys.getenv_opt "IFC_FUZZ_PLANT_DATAFLOW_UNSOUND" <> None;
      plant_refine_unsound =
        Sys.getenv_opt "IFC_FUZZ_PLANT_REFINE_UNSOUND" <> None;
    }
  in
  let result =
    let* () = if jobs < 1 then Error "--jobs must be at least 1" else Ok () in
    let* () =
      if cases < 0 then Error "--cases must be non-negative" else Ok ()
    in
    let* () =
      if refine_cases < 0 then Error "--refine-cases must be non-negative"
      else Ok ()
    in
    let* () =
      if size_min < 1 || size_max < size_min then
        Error "--size-min/--size-max must satisfy 1 <= min <= max"
      else Ok ()
    in
    let run_with sink = Campaign.run ?sink config in
    match log_file with
    | None -> Ok (run_with None)
    | Some path -> (
      try Telemetry.with_sink path (fun sink -> Ok (run_with (Some sink)))
      with Sys_error msg -> Error msg)
  in
  match result with
  | Error msg ->
    Fmt.epr "ifc: %s@." msg;
    1
  | Ok s ->
    (* stdout is byte-deterministic for a fixed seed at any worker count;
       timing goes to stderr only. *)
    Fmt.pr "%a" Campaign.pp_summary s;
    Fmt.pr "%s@." (Campaign.summary_json s);
    if not quiet then begin
      let ms = Telemetry.ns_to_ms s.Campaign.elapsed_ns in
      Fmt.epr "fuzz: %d cases in %.1f ms (%.1f cases/s)@." s.Campaign.completed
        ms
        (if ms > 0. then float_of_int s.Campaign.completed /. (ms /. 1e3)
         else 0.)
    end;
    Campaign.exit_code s

let fuzz_cmd =
  let cases =
    Arg.(
      value & opt int 200
      & info [ "cases" ] ~docv:"N" ~doc:"Random programs to draw and audit.")
  in
  let refine_cases =
    Arg.(
      value & opt int 25
      & info [ "refine-cases" ] ~docv:"N"
          ~doc:
            "Module-refinement cases appended to the campaign: each draws a \
             linked two-module unit plus a mutated replacement, takes the \
             compositional claim (link certifies, refinement accepted) at \
             face value, and sets the executor on claimed-safe swaps. A \
             witnessed leak classifies as the $(i,refine-unsound) inversion.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Campaign seed.")
  in
  let jobs =
    Arg.(
      value
      & opt int (max 1 (Domain.recommended_domain_count ()))
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (defaults to the recommended domain count).")
  in
  let size_min =
    Arg.(
      value & opt int 4
      & info [ "size-min" ] ~docv:"N" ~doc:"Minimum requested program size.")
  in
  let size_max =
    Arg.(
      value & opt int 12
      & info [ "size-max" ] ~docv:"N" ~doc:"Maximum requested program size.")
  in
  let ni_pairs =
    Arg.(
      value & opt int 4
      & info [ "ni-pairs" ] ~docv:"N"
          ~doc:"Noninterference-oracle input pairs per case.")
  in
  let max_states =
    Arg.(
      value & opt int 4_000
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "Oracle state-space budget per exploration; pairs that exceed it \
             count as skipped, never as evidence.")
  in
  let time_budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECS"
          ~doc:
            "Soak mode: stop starting new cases after $(docv) seconds (late \
             cases are reported as timed out; which ones depends on \
             scheduling, so budgeted runs are not byte-reproducible).")
  in
  let shrink_budget =
    Arg.(
      value & opt int 300
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Analyzer re-evaluations allowed while shrinking one \
                counterexample.")
  in
  let corpus_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Persist shrunk soundness counterexamples to $(docv) as \
             $(i,name.ifc) + $(i,name.expect) pairs (the regression corpus \
             format under test/corpus/fuzz).")
  in
  let fuzz_store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Replay every case against the persistent artifact store at \
             $(docv): stored CFM verdicts that diverge from freshly computed \
             ones classify as the $(i,store-stale) inversion, and misses \
             write honest verdicts back for the next campaign to replay.")
  in
  let log_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE.jsonl"
          ~doc:"Append one JSON event per case, shrink and summary to $(docv).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No timing chatter on stderr.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run a differential fuzzing campaign: random programs through CFM, \
          Denning, the flow-sensitive certifier, the Theorem-1 prover and the \
          noninterference oracle in parallel, classifying disagreements \
          against the paper's hierarchy. Soundness inversions are shrunk and \
          persisted; expected strictness gaps are counted. Exit code 2 if any \
          inversion was found.")
    Term.(
      const run_fuzz $ cases $ refine_cases $ seed $ jobs $ size_min $ size_max
      $ ni_pairs $ max_states $ time_budget $ shrink_budget $ corpus_dir
      $ fuzz_store_dir $ log_file $ quiet)

(* ------------------------------------------------------------------ *)
(* serve / client *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_arg =
  let parse s = Result.map_error (fun m -> `Msg m) (Conn.tcp_of_string s) in
  let print ppf ep = Conn.pp_endpoint ppf ep in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"TCP endpoint (port 0 picks an ephemeral port).")

let run_serve socket tcp jobs shards cache_size store_dir max_request_bytes
    max_connections max_pending max_inflight deadline_ms log_file port_file
    quiet =
  let result =
    let endpoints =
      (match socket with Some p -> [ Conn.Unix_socket p ] | None -> [])
      @ match tcp with Some ep -> [ ep ] | None -> []
    in
    let* () =
      if endpoints = [] then Error "serve needs --socket PATH and/or --tcp HOST:PORT"
      else Ok ()
    in
    let* log =
      match log_file with
      | None -> Ok None
      | Some path -> (
        try Ok (Some (Telemetry.open_sink path)) with Sys_error msg -> Error msg)
    in
    let* store =
      match store_dir with
      | None -> Ok None
      | Some dir ->
        let* s = Store.open_ dir in
        Ok (Some (Store.tier s))
    in
    let config =
      {
        Server.endpoints;
        workers = jobs;
        shards;
        cache_capacity = cache_size;
        limits =
          {
            Limits.max_request_bytes;
            max_connections;
            max_pending;
            max_inflight;
            default_deadline_ms = deadline_ms;
          };
        log;
        store;
      }
    in
    let* server = Server.create config in
    let stop _ = Server.request_stop server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    (match (port_file, Server.port server) with
    | Some path, Some port ->
      Out_channel.with_open_text path (fun oc ->
          Printf.fprintf oc "%d\n" port)
    | _ -> ());
    if not quiet then begin
      List.iter
        (fun ep ->
          let ep =
            match (ep, Server.port server) with
            | Conn.Tcp (host, 0), Some port -> Conn.Tcp (host, port)
            | ep, _ -> ep
          in
          Fmt.epr "ifc: serving on %a@." Conn.pp_endpoint ep)
        endpoints;
      Fmt.epr "ifc: %d worker domain(s), cache capacity %d@." jobs cache_size
    end;
    Server.run server;
    if not quiet then Fmt.epr "ifc: drained, shutting down@.";
    Ok ()
  in
  exit_of_result result

let serve_cmd =
  let jobs =
    Arg.(
      value
      & opt int (max 1 (Domain.recommended_domain_count ()))
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (defaults to the recommended domain count).")
  in
  let shards =
    Arg.(
      value
      & opt int (max 1 (Domain.recommended_domain_count ()))
      & info [ "shards" ] ~docv:"N"
          ~doc:"Connection-shard event loops (defaults to the recommended \
                domain count). 0 selects the legacy thread-per-connection \
                engine.")
  in
  let cache_size =
    Arg.(
      value & opt int 4096
      & info [ "cache-size" ] ~docv:"N"
          ~doc:"Shared result-cache capacity (LRU eviction).")
  in
  let store_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persistent content-addressed result store under the memory \
             cache: the hottest stored generation is preloaded at boot, \
             cache misses consult disk before computing, computed results \
             are persisted, and $(b,stats) responses gain a store object.")
  in
  let max_request_bytes =
    Arg.(
      value
      & opt int Limits.default.Limits.max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:"Longest accepted request line; longer requests get an \
                $(b,oversized) error.")
  in
  let max_connections =
    Arg.(
      value
      & opt int Limits.default.Limits.max_connections
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Concurrent client connections; excess connections get one \
                $(b,overloaded) response. 0 = unlimited.")
  in
  let max_pending =
    Arg.(
      value
      & opt int Limits.default.Limits.max_pending
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Queued jobs tolerated before requests are answered \
                $(b,overloaded). 0 = unlimited.")
  in
  let max_inflight =
    Arg.(
      value
      & opt int Limits.default.Limits.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Concurrently executing pipelined (protocol v4) requests per \
                connection before further ones are answered \
                $(b,overloaded). 0 = unlimited.")
  in
  let deadline_ms =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline (0 = none); requests may carry \
                their own.")
  in
  let log_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE.jsonl"
          ~doc:"Append one JSON object per request for audit/replay.")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:"Write the bound TCP port to $(docv) once listening (useful \
                with --tcp HOST:0).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No startup/shutdown chatter.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the certification daemon: concurrent clients share one worker \
          pool and one result cache over a newline-delimited JSON protocol \
          (see PROTOCOL.md). SIGINT/SIGTERM drain in-flight requests before \
          exiting.")
    Term.(
      const run_serve $ socket_arg $ tcp_arg $ jobs $ shards $ cache_size
      $ store_dir $ max_request_bytes $ max_connections $ max_pending
      $ max_inflight $ deadline_ms $ log_file $ port_file $ quiet)

(* Resolve the client's --lattice argument: builtin names pass through,
   file paths are inlined as spec text (the server never opens files on
   a client's behalf). *)
let client_lattice lattice_name =
  match lattice_name with
  | "two" | "three" | "four" | "mls" -> Ok lattice_name
  | path when Sys.file_exists path -> read_file path
  | other -> Ok other

let run_client socket tcp wait json_out lattice_name binding_file self_check
    analyses_csv deadline_ms op files =
  let result =
    let* endpoint =
      match (socket, tcp) with
      | Some p, None -> Ok (Conn.Unix_socket p)
      | None, Some ep -> Ok ep
      | None, None -> Error "client needs --socket PATH or --tcp HOST:PORT"
      | Some _, Some _ -> Error "give either --socket or --tcp, not both"
    in
    Client.with_client ~retry_for:wait endpoint (fun c ->
        match op with
        | "ping" ->
          let* () = Client.ping c in
          Fmt.pr "pong@.";
          Ok 0
        | "stats" ->
          let* response = Client.stats c in
          if json_out then Fmt.pr "%s@." (Telemetry.json_to_string response)
          else begin
            let stats =
              Option.value ~default:Telemetry.Null (Jsonx.member "stats" response)
            in
            let int_of path json =
              match
                List.fold_left
                  (fun acc key -> Option.bind acc (Jsonx.member key))
                  (Some json) path
              with
              | Some v -> Option.value ~default:0 (Jsonx.int_opt v)
              | None -> 0
            in
            Fmt.pr "uptime: %.1f s@."
              (float_of_int (int_of [ "uptime_ns" ] stats) /. 1e9);
            Fmt.pr "workers: %d, active connections: %d (peak %d)@."
              (int_of [ "workers" ] stats)
              (int_of [ "active_connections" ] stats)
              (int_of [ "peak_connections" ] stats);
            Fmt.pr "requests: %d (%d errors)@."
              (int_of [ "counters"; "requests" ] stats)
              (int_of [ "counters"; "errors" ] stats);
            let hits = int_of [ "cache"; "hits" ] stats
            and misses = int_of [ "cache"; "misses" ] stats in
            Fmt.pr "cache: %d hits, %d misses, %d entries@." hits misses
              (int_of [ "cache"; "size" ] stats);
            Fmt.pr "latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms over %d requests@."
              (float_of_int (int_of [ "latency"; "p50_ns" ] stats) /. 1e6)
              (float_of_int (int_of [ "latency"; "p95_ns" ] stats) /. 1e6)
              (float_of_int (int_of [ "latency"; "p99_ns" ] stats) /. 1e6)
              (int_of [ "latency"; "count" ] stats)
          end;
          Ok 0
        | "check" ->
          let* () = if files = [] then Error "check needs program files" else Ok () in
          let* lattice = client_lattice lattice_name in
          let* binding =
            match binding_file with
            | None -> Ok None
            | Some path -> Result.map Option.some (read_file path)
          in
          let analyses =
            String.split_on_char ',' analyses_csv
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          List.fold_left
            (fun acc path ->
              let* worst = acc in
              let* program = read_file path in
              let* response =
                Client.check c ~name:(Filename.basename path) ~lattice ?binding
                  ~analyses ~self_check ?deadline_ms program
              in
              if json_out then begin
                Fmt.pr "%s@." (Telemetry.json_to_string response);
                Ok worst
              end
              else if Protocol.response_ok response then begin
                let verdict =
                  Option.value ~default:"?" (Protocol.response_verdict response)
                in
                let cache =
                  Option.value ~default:"?" (Jsonx.mem_string "cache" response)
                in
                Fmt.pr "%s: %s (cache %s)@." path verdict cache;
                (match Jsonx.mem_string "error" response with
                | Some msg -> Fmt.epr "ifc: %s errored: %s@." path msg
                | None -> ());
                Ok (if verdict = "pass" then worst else max worst 2)
              end
              else begin
                match Protocol.response_error response with
                | Some (code, msg) ->
                  Fmt.pr "%s: error %s (%s)@." path code msg;
                  Ok (max worst 2)
                | None -> Error "malformed response (no verdict, no error)"
              end)
            (Ok 0) files
        | "cert" ->
          let* path =
            match files with
            | [ path ] -> Ok path
            | _ -> Error "cert needs exactly one program file"
          in
          let* lattice = client_lattice lattice_name in
          let* binding =
            match binding_file with
            | None -> Ok None
            | Some path -> Result.map Option.some (read_file path)
          in
          let* program = read_file path in
          let* response =
            Client.cert_emit c ~name:(Filename.basename path) ~lattice ?binding
              ?deadline_ms program
          in
          if json_out then begin
            Fmt.pr "%s@." (Telemetry.json_to_string response);
            Ok 0
          end
          else if Protocol.response_ok response then begin
            match Jsonx.mem_string "cert" response with
            | Some text ->
              Fmt.pr "%s" text;
              Ok 0
            | None ->
              Fmt.epr "ifc: %s: no certificate (verdict %s)@." path
                (Option.value ~default:"?" (Protocol.response_verdict response));
              Ok 2
          end
          else begin
            match Protocol.response_error response with
            | Some (code, msg) ->
              Fmt.epr "ifc: %s: error %s (%s)@." path code msg;
              Ok 2
            | None -> Error "malformed response (no cert, no error)"
          end
        | "cert-check" ->
          let* program_path, cert_path =
            match files with
            | [ p; c ] -> Ok (p, c)
            | _ -> Error "cert-check needs a program file and a certificate file"
          in
          let* program = read_file program_path in
          let* cert = read_file cert_path in
          let* response =
            Client.cert_check c ~name:(Filename.basename program_path) ~cert
              ?deadline_ms program
          in
          if json_out then begin
            Fmt.pr "%s@." (Telemetry.json_to_string response);
            Ok 0
          end
          else if Protocol.response_ok response then begin
            match Jsonx.member "valid" response with
            | Some (Telemetry.Bool true) ->
              Fmt.pr "%s: certificate valid (%d nodes)@." cert_path
                (Option.value ~default:0 (Jsonx.mem_int "nodes" response));
              Ok 0
            | _ ->
              let first =
                Option.value ~default:Telemetry.Null
                  (Jsonx.member "first" response)
              in
              Fmt.pr "%s: certificate rejected at %s: [%s] %s@." cert_path
                (Option.value ~default:"?" (Jsonx.mem_string "path" first))
                (Option.value ~default:"?" (Jsonx.mem_string "rule" first))
                (Option.value ~default:"" (Jsonx.mem_string "reason" first));
              Ok 2
          end
          else begin
            match Protocol.response_error response with
            | Some (code, msg) ->
              Fmt.pr "%s: error %s (%s)@." cert_path code msg;
              Ok 2
            | None -> Error "malformed response (no verdict, no error)"
          end
        | "lint" ->
          let* () = if files = [] then Error "lint needs program files" else Ok () in
          List.fold_left
            (fun acc path ->
              let* worst = acc in
              let* program = read_file path in
              let* response =
                Client.lint c ~name:(Filename.basename path) ?deadline_ms
                  program
              in
              if json_out then begin
                Fmt.pr "%s@." (Telemetry.json_to_string response);
                Ok worst
              end
              else if Protocol.response_ok response then begin
                let verdict =
                  Option.value ~default:"?" (Protocol.response_verdict response)
                in
                let findings =
                  match
                    Option.bind
                      (Jsonx.member "report" response)
                      (Jsonx.member "findings")
                  with
                  | Some (Telemetry.List fs) -> fs
                  | _ -> []
                in
                List.iter
                  (fun f ->
                    Fmt.pr "%s: %s: %s[%s]: %s@." path
                      (Option.value ~default:"?" (Jsonx.mem_string "span" f))
                      (Option.value ~default:"?" (Jsonx.mem_string "severity" f))
                      (Option.value ~default:"?" (Jsonx.mem_string "kind" f))
                      (Option.value ~default:"" (Jsonx.mem_string "message" f)))
                  findings;
                Fmt.pr "%s: %s (%d finding%s)@." path verdict
                  (List.length findings)
                  (if List.length findings = 1 then "" else "s");
                Ok (if verdict = "pass" then worst else max worst 2)
              end
              else begin
                match Protocol.response_error response with
                | Some (code, msg) ->
                  Fmt.pr "%s: error %s (%s)@." path code msg;
                  Ok (max worst 2)
                | None -> Error "malformed response (no verdict, no error)"
              end)
            (Ok 0) files
        | other ->
          Error
            (Printf.sprintf
               "unknown client operation %S (use check, cert, cert-check, \
                lint, stats, or ping)" other))
  in
  match result with
  | Ok code -> code
  | Error msg ->
    Fmt.epr "ifc: %s@." msg;
    1

let client_cmd =
  let wait =
    Arg.(
      value & opt float 0.
      & info [ "wait" ] ~docv:"SECS"
          ~doc:"Retry the connection for up to $(docv) seconds (for servers \
                still starting).")
  in
  let json_out =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print raw response lines instead of summaries.")
  in
  let analyses =
    Arg.(
      value & opt string "cfm"
      & info [ "analyses" ] ~docv:"LIST"
          ~doc:"Comma-separated analyses: $(b,denning), $(b,cfm), $(b,prove), \
                $(b,ni).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let op =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:
            "$(b,check), $(b,cert) (emit a certificate for one program), \
             $(b,cert-check) (validate PROGRAM CERT), $(b,lint) (static \
             concurrency analysis), $(b,stats), or $(b,ping).")
  in
  let files =
    Arg.(
      value & pos_right 0 file []
      & info [] ~docv:"PROGRAM"
          ~doc:"Program files (for $(b,check), $(b,cert), $(b,cert-check)).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running certification daemon: certify programs over the \
          wire, fetch service stats, or ping. Exit code 2 if any program \
          fails certification.")
    Term.(
      const run_client $ socket_arg $ tcp_arg $ wait $ json_out $ lattice_arg
      $ binding_arg $ self_check_arg $ analyses $ deadline_ms $ op $ files)

(* ------------------------------------------------------------------ *)
(* loadgen *)

let run_loadgen socket tcp wait json_out clients window requests distinct
    ops_csv name oracle seed oracle_requests shards =
  let result =
    if oracle then begin
      let* r = Oracle.run ~seed ~requests:oracle_requests ~shards () in
      if json_out then
        Fmt.pr "%s@."
          (Telemetry.json_to_string (Telemetry.Obj (Oracle.report_fields r)))
      else
        Fmt.pr "oracle: %d requests replayed, %d divergence(s)@." r.Oracle.compared
          (List.length r.Oracle.divergences);
      match r.Oracle.divergences with
      | [] -> Ok 0
      | ds ->
        List.iteri
          (fun i d ->
            if i < 5 then begin
              Fmt.epr "divergence id %d:@." d.Oracle.id;
              Fmt.epr "  request: %s@." d.Oracle.request;
              Fmt.epr "  legacy:  %s@." d.Oracle.legacy;
              Fmt.epr "  sharded: %s@." d.Oracle.sharded
            end)
          ds;
        Ok 2
    end
    else
      let* () = Limits.check_fd_budget ~what:"--clients" clients in
      let* endpoint =
        match (socket, tcp) with
        | Some p, None -> Ok (Conn.Unix_socket p)
        | None, Some ep -> Ok ep
        | None, None -> Error "loadgen needs --socket PATH or --tcp HOST:PORT"
        | Some _, Some _ -> Error "give either --socket or --tcp, not both"
      in
      let* ops =
        String.split_on_char ',' ops_csv
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.fold_left
             (fun acc name ->
               let* acc = acc in
               match Loadgen.op_of_string name with
               | Some op -> Ok (op :: acc)
               | None ->
                 Error
                   (Fmt.str "unknown op %S (use check, cert, lint, or ping)"
                      name))
             (Ok [])
        |> Result.map List.rev
      in
      let cfg =
        {
          Loadgen.endpoint;
          clients;
          window;
          requests;
          distinct;
          ops;
          name;
          retry_for = wait;
        }
      in
      let r = Loadgen.run cfg in
      if json_out then
        Fmt.pr "%s@."
          (Telemetry.json_to_string (Telemetry.Obj (Loadgen.report_fields r)))
      else begin
        Fmt.pr "load: %d client(s) x %d request(s), window %d@." r.Loadgen.clients
          requests r.Loadgen.window;
        Fmt.pr "ok: %d, failed: %d, protocol errors: %d, connect errors: %d@."
          r.Loadgen.ok r.Loadgen.failed r.Loadgen.protocol_errors
          r.Loadgen.connect_errors;
        Fmt.pr "throughput: %.1f req/s over %.2f s@." r.Loadgen.throughput_rps
          r.Loadgen.duration_s;
        Fmt.pr
          "latency: mean %.2f ms, p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max \
           %.2f ms@."
          r.Loadgen.mean_ms r.Loadgen.p50_ms r.Loadgen.p95_ms r.Loadgen.p99_ms
          r.Loadgen.max_ms;
        Fmt.pr "codes:%s@."
          (String.concat ""
             (List.map
                (fun (code, n) -> Fmt.str " %s=%d" code n)
                r.Loadgen.codes))
      end;
      if
        r.Loadgen.protocol_errors > 0
        || r.Loadgen.connect_errors > 0
        || r.Loadgen.ok = 0
      then Ok 2
      else Ok 0
  in
  match result with
  | Ok code -> code
  | Error msg ->
    Fmt.epr "ifc: %s@." msg;
    1

let loadgen_cmd =
  let wait =
    Arg.(
      value & opt float 5.
      & info [ "wait" ] ~docv:"SECS"
          ~doc:"Retry each connection for up to $(docv) seconds.")
  in
  let json_out =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the report as one JSON line.")
  in
  let clients =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let window =
    Arg.(
      value & opt int 8
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Pipelined requests kept in flight per connection (protocol \
             version 4); 1 degrades to serial request/response.")
  in
  let requests =
    Arg.(
      value & opt int 50
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per connection.")
  in
  let distinct =
    Arg.(
      value & opt int 64
      & info [ "distinct" ] ~docv:"N"
          ~doc:
            "Distinct program variants cycled through (the cache-pressure \
             knob; 1 makes every request after the first a cache hit).")
  in
  let ops =
    Arg.(
      value & opt string "check"
      & info [ "ops" ] ~docv:"LIST"
          ~doc:
            "Comma-separated request mix, cycled: $(b,check), $(b,cert), \
             $(b,lint), $(b,ping).")
  in
  let name_arg =
    Arg.(
      value & opt string "load"
      & info [ "name" ] ~docv:"NAME"
          ~doc:
            "Request name attached to every job (a $(b,stall)-prefixed name \
             trips the server's IFC_SERVE_PLANT_STALL hook).")
  in
  let oracle =
    Arg.(
      value & flag
      & info [ "oracle" ]
          ~doc:
            "Run the differential server oracle instead of a load: replay \
             one seeded stream against the legacy and sharded engines \
             (booted in-process; no --socket/--tcp needed) and demand \
             identical responses. Exit code 2 on divergence.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Oracle stream seed.")
  in
  let oracle_requests =
    Arg.(
      value & opt int 500
      & info [ "oracle-requests" ] ~docv:"N"
          ~doc:"Oracle stream length.")
  in
  let shards =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N"
          ~doc:"Shard count for the oracle's sharded server.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running certification daemon with concurrent pipelined \
          clients and report throughput and latency percentiles — or, with \
          $(b,--oracle), differentially test the two connection engines \
          against each other. Exit code 2 on protocol errors, zero \
          successful responses, or oracle divergence.")
    Term.(
      const run_loadgen $ socket_arg $ tcp_arg $ wait $ json_out $ clients
      $ window $ requests $ distinct $ ops $ name_arg $ oracle $ seed
      $ oracle_requests $ shards)

(* ------------------------------------------------------------------ *)
(* lattice / gen / rules *)

let run_lattice lattice_name dot =
  exit_of_result
    (let* lat = load_lattice lattice_name in
     if dot then begin
       Fmt.pr "%s" (Lattice.to_dot lat);
       Ok ()
     end
     else begin
       Fmt.pr "lattice %s: %d classes, height %d@." lat.Lattice.name
         (List.length lat.Lattice.elements)
         (Lattice.height lat);
       Fmt.pr "bottom: %s, top: %s@." lat.Lattice.bottom lat.Lattice.top;
       List.iter (fun (a, b) -> Fmt.pr "  %s < %s@." a b) (Lattice.covers lat);
       match Laws.check lat with
       | Ok () ->
         Fmt.pr "all %d lattice laws hold@." (List.length Laws.laws);
         Ok ()
       | Error { Laws.law; witness } ->
         Error (Printf.sprintf "law %s violated by %s" law witness)
     end)

let lattice_cmd =
  let lattice_pos =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"LATTICE" ~doc:"Built-in name or spec file.")
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ] ~doc:"Emit the Hasse diagram as a Graphviz digraph.")
  in
  Cmd.v
    (Cmd.info "lattice" ~doc:"Inspect and validate a classification scheme.")
    Term.(const run_lattice $ lattice_pos $ dot)

let run_gen size seed sequential =
  let rng = Ifc_support.Prng.create seed in
  let cfg = if sequential then Gen.sequential else Gen.default in
  let p = Gen.program rng cfg ~size in
  Fmt.pr "%s@." (Pretty.program_to_string p);
  Fmt.epr "-- %d statements@." (Metrics.of_program p).Metrics.statements;
  0

let gen_cmd =
  let size =
    Arg.(value & opt int 20 & info [ "size" ] ~docv:"N" ~doc:"Target statement count.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.") in
  let sequential =
    Arg.(
      value & flag
      & info [ "sequential" ] ~doc:"No concurrency or synchronization constructs.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a random well-formed program (for corpora).")
    Term.(const run_gen $ size $ seed $ sequential)

let rules_text =
  {|Figure 1 — the information flow logic (Andrews & Reitman)

  assignment   {P[x <- e (+) local (+) global]}  x := e  {P}
  signal       {P[sem <- sem (+) local (+) global]}  signal(sem)  {P}
  wait         {P[sem <- sem (+) local (+) global,
                  global <- sem (+) local (+) global]}  wait(sem)  {P}
  alternation  {V,L',G} S1 {V',L',G'},  {V,L',G} S2 {V',L',G'},
               V,L,G |- L'[local <- local (+) e]
               =>  {V,L,G} if e then S1 else S2 {V',L,G'}
  iteration    {V,L',G} S {V,L',G},
               V,L,G |- L'[local <- local (+) e],
               V,L,G |- G'[global <- global (+) local (+) e]
               =>  {V,L,G} while e do S {V,L,G'}
  composition  {P0} S1 {P1}, ..., {Pn-1} Sn {Pn}
               =>  {P0} begin S1; ...; Sn end {Pn}
  consequence  {P'} S {Q'},  P |- P',  Q' |- Q  =>  {P} S {Q}
  concurrency  {Vi,L,G} Si {Vi',L,G'} interference-free (1 <= i <= n)
               =>  {V1..Vn,L,G} cobegin S1 || ... || Sn coend {V1'..Vn',L,G'}

Figure 2 — the Concurrent Flow Mechanism

  statement      mod(S)            flow(S)                      cert(S)
  x := e         sbind(x)          nil                          sbind(e) <= sbind(x)
  if e S1 S2     mod(S1)(*)mod(S2) nil if both nil, else        cert(S1) and cert(S2)
                                   flow(S1)(+)flow(S2)(+)e      and sbind(e) <= mod(S)
  while e S1     mod(S1)           flow(S1) (+) sbind(e)        cert(S1) and flow(S) <= mod(S)
  begin S1..Sn   (*)i mod(Si)      (+)i flow(Si)                all cert(Si) and
                                                                flow(Sj) <= mod(Si), j < i
  cobegin ..     (*)i mod(Si)      (+)i flow(Si)                all cert(Si)
  wait(sem)      sbind(sem)        sbind(sem)                   true
  signal(sem)    sbind(sem)        nil                          true

  extensions beyond the paper (see DESIGN.md):
  a[i] := e      sbind(a)          nil                          sbind(i) (+) sbind(e) <= sbind(a)
  x := declassify e to C
                 sbind(x)          nil                          C <= sbind(x)
  send(c, e)     sbind(c)          nil                          sbind(e) <= sbind(c)
  recv(c, x)     sbind(c)(*)sbind(x)  sbind(c)                  sbind(c) <= sbind(x)

  ((+) join, (*) meet; nil is the extended scheme's new bottom, Definition 4.)|}

(* ------------------------------------------------------------------ *)
(* store *)

let store_pos_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Store directory.")

(* Inspection verbs open without bumping the generation, so looking at a
   store never ages its heat ranking. *)
let run_store_stats dir =
  exit_of_result
    (let* s = Store.open_ ~bump:false dir in
     let d = Store.disk_stats s in
     Fmt.pr "generation: %d@." d.Store.generation;
     Fmt.pr "entries: %d (%d bytes)@." d.Store.entries d.Store.entry_bytes;
     Fmt.pr "summaries: %d (%d bytes)@." d.Store.summaries d.Store.summary_bytes;
     Fmt.pr "quarantined: %d@." d.Store.quarantined;
     Ok ())

let run_store_verify dir =
  match Store.open_ ~bump:false dir with
  | Error msg ->
    Fmt.epr "ifc: %s@." msg;
    1
  | Ok s ->
    let r = Store.verify s in
    List.iter
      (fun name -> Fmt.pr "quarantined: %s@." name)
      r.Store.quarantined_files;
    Fmt.pr "checked: %d, ok: %d, quarantined: %d@." r.Store.checked r.Store.ok
      r.Store.quarantined;
    if r.Store.quarantined > 0 then 2 else 0

let run_store_gc dir keep =
  let result =
    let* () = if keep < 0 then Error "--keep must be non-negative" else Ok () in
    let* s = Store.open_ ~bump:false dir in
    let r = Store.gc ~keep s in
    Fmt.pr "live: %d, swept: %d, staging swept: %d, bytes freed: %d@."
      r.Store.live r.Store.swept r.Store.tmp_swept r.Store.bytes_freed;
    Ok ()
  in
  exit_of_result result

let store_cmd =
  let keep =
    Arg.(
      value & opt int 2
      & info [ "keep" ] ~docv:"N"
          ~doc:
            "Generations to keep: entries last touched within $(docv) \
             generations of the current one survive; older ones are swept.")
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Inspect and maintain a persistent result store (the directory given \
          to $(b,ifc batch --store) / $(b,ifc serve --store).")
    [
      Cmd.v
        (Cmd.info "stats"
           ~doc:"Print generation, entry/summary counts and bytes on disk.")
        Term.(const run_store_stats $ store_pos_arg);
      Cmd.v
        (Cmd.info "verify"
           ~doc:
             "Structurally verify every entry: checksums, framing, digest/file \
              name agreement, parseable certificate artifacts. Damaged or \
              junk files are moved to quarantine/. Exit code 2 if anything \
              was quarantined.")
        Term.(const run_store_verify $ store_pos_arg);
      Cmd.v
        (Cmd.info "gc"
           ~doc:
             "Mark-and-sweep by generation: drop entries that have not been \
              touched for --keep generations, and clear staging leftovers.")
        Term.(const run_store_gc $ store_pos_arg $ keep);
    ]

(* ------------------------------------------------------------------ *)
(* modsys *)

let open_summary_store = function
  | None -> Ok None
  | Some dir ->
    let* s = Store.open_ dir in
    Ok (Some s)

let run_modsys_summary lattice_name store_dir path =
  exit_of_result
    (let* lat = load_lattice lattice_name in
     let* l = load_linked path in
     let* store = open_summary_store store_dir in
     let* () =
       List.fold_left
         (fun acc (m : Ast.module_unit) ->
           let* () = acc in
           let key = Msummary.key ~lattice:lat m in
           let* origin, s =
             match
               Option.bind store (fun st -> Msummary.of_store st ~key)
             with
             | Some s -> Ok ("store", s)
             | None ->
               let* s =
                 Result.map_error
                   (Fmt.str "module %s: %s" m.Ast.iface.Ast.m_name)
                   (Msummary.summarize ~lattice:lat m)
               in
               Option.iter (fun st -> Msummary.to_store st ~key s) store;
               Ok ("fresh", s)
           in
           Fmt.pr "module %s (%s)@." s.Linked.m_name origin;
           List.iter (fun line -> Fmt.pr "%s@." line) (Linked.summary_to_lines s);
           Ok ())
         (Ok ()) l.Ast.modules
     in
     Ok ())

let run_modsys_link lattice_name store_dir out components_dir path =
  exit_of_verdict
    (let* lat = load_lattice lattice_name in
     let* l = load_linked path in
     let* store = open_summary_store store_dir in
     let* outcome = Mlink.certify ?store ~lattice:lat l in
     Fmt.epr "link: %d summaries computed, %d reused from store@."
       outcome.Mlink.computed outcome.Mlink.reused;
     if not outcome.Mlink.ok then begin
       Fmt.pr "linked unit REJECTED:@.";
       List.iter (fun i -> Fmt.pr "  %s@." i) outcome.Mlink.issues;
       Ok false
     end
     else
       let* text, components = Mlink.emit ?store ~lattice:lat l in
       let* () =
         match components_dir with
         | None -> Ok ()
         | Some dir ->
           let* () =
             try
               if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
               Ok ()
             with Unix.Unix_error (e, _, _) ->
               Error (Printf.sprintf "%s: %s" dir (Unix.error_message e))
           in
           List.fold_left
             (fun acc (name, ctext) ->
               let* () = acc in
               let file = Filename.concat dir (name ^ ".cert") in
               let* () = write_file file ctext in
               Fmt.epr "component certificate written to %s@." file;
               Ok ())
             (Ok ()) components
       in
       (match out with
       | None ->
         print_string text;
         Ok true
       | Some out ->
         let* () = write_file out text in
         Fmt.pr "linked certificate written to %s (%d bytes, %d summaries)@."
           out (String.length text)
           (List.length outcome.Mlink.summaries);
         Ok true))

let run_modsys_refine lattice_name module_name unit_path replacement_path =
  exit_of_verdict
    (let* lat = load_lattice lattice_name in
     let* l = load_linked unit_path in
     let* base =
       match module_name with
       | None -> (
         match l.Ast.modules with
         | m :: _ -> Ok m
         | [] -> Error (unit_path ^ ": contains no module clause"))
       | Some n -> (
         match
           List.find_opt
             (fun (m : Ast.module_unit) -> m.Ast.iface.Ast.m_name = n)
             l.Ast.modules
         with
         | Some m -> Ok m
         | None -> Error (Printf.sprintf "%s: no module named %s" unit_path n))
     in
     let* repl = load_module replacement_path in
     let* report = Mrefine.check_against ~lattice:lat ~base repl in
     if report.Mrefine.ok then begin
       Fmt.pr "refinement ACCEPTED: %s may replace %s (every certified link \
               stays certified)@."
         repl.Ast.iface.Ast.m_name base.Ast.iface.Ast.m_name;
       Ok true
     end
     else begin
       Fmt.pr "refinement REJECTED: %s may not replace %s:@."
         repl.Ast.iface.Ast.m_name base.Ast.iface.Ast.m_name;
       List.iter (fun r -> Fmt.pr "  %s@." r) report.Mrefine.reasons;
       Ok false
     end)

let modsys_cmd =
  let unit_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"UNIT"
          ~doc:"Linked unit file: module clauses plus an optional main program.")
  in
  let summary_store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persist and reuse module summaries keyed by structural digest: \
             a module whose text, lattice and default binding are unchanged \
             is answered from $(docv) instead of being re-summarized.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the linked certificate to $(docv) instead of standard \
                output.")
  in
  let components_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "components" ] ~docv:"DIR"
          ~doc:
            "Also write each module's component certificate (a version-1 \
             proof of its import-closed body, when one exists) to \
             $(docv)/$(i,name).cert, for $(b,ifc cert check --component).")
  in
  let module_name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "module" ] ~docv:"NAME"
          ~doc:"Base module to replace (defaults to the unit's first module).")
  in
  let replacement_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"REPLACEMENT"
          ~doc:"Replacement module file (a single module clause).")
  in
  let summary =
    Cmd.v
      (Cmd.info "summary"
         ~doc:
           "Summarize each module of a linked unit: symbolic mod/flow over \
            its imports, residual constraints, channel and semaphore \
            obligations, export conformance — everything linking needs, \
            keyed by the module's structural digest.")
      Term.(
        const run_modsys_summary $ lattice_arg $ summary_store_arg $ unit_arg)
  in
  let link =
    Cmd.v
      (Cmd.info "link"
         ~doc:
           "Certify a linked unit from module summaries alone — module \
            bodies are never re-walked at link time — and emit the \
            $(b,ifc-cert 2) linked certificate. The verdict coincides \
            byte-for-byte with whole-program CFM on the elaborated unit. \
            Exit 2 when the unit does not certify.")
      Term.(
        const run_modsys_link $ lattice_arg $ summary_store_arg $ out_arg
        $ components_dir_arg $ unit_arg)
  in
  let refine =
    Cmd.v
      (Cmd.info "refine"
         ~doc:
           "Check that a replacement module is a security-preserving \
            refinement of a unit's module: summaries compare monotonically \
            (constraints, flow, mod, obligations, interface), so every \
            certified link stays certified after the swap. Exit 2 on \
            rejection.")
      Term.(
        const run_modsys_refine $ lattice_arg $ module_name_arg $ unit_arg
        $ replacement_arg)
  in
  Cmd.group
    (Cmd.info "modsys"
       ~doc:
         "Compositional certification: module summaries, summary-based \
          linking and security-preserving refinement (see DESIGN.md).")
    [ summary; link; refine ]

(* ------------------------------------------------------------------ *)

let run_fmt path =
  exit_of_result
    (let* p = load_program path in
     Fmt.pr "%s@." (Pretty.program_to_string p);
     Ok ())

let fmt_cmd =
  Cmd.v
    (Cmd.info "fmt" ~doc:"Parse a program and reprint it canonically formatted.")
    Term.(const run_fmt $ program_arg)

let rules_cmd =
  Cmd.v
    (Cmd.info "rules" ~doc:"Print the paper's Figure 1 and Figure 2 as a reference card.")
    Term.(const (fun () -> Fmt.pr "%s@." rules_text; 0) $ const ())

(* ------------------------------------------------------------------ *)

let main_cmd =
  Cmd.group
    (Cmd.info "ifc" ~version:"1.0.0"
       ~doc:
         "Information-flow certification for parallel programs — a reproduction of \
          Reitman's Concurrent Flow Mechanism (SOSP 1979).")
    [
      check_cmd;
      denning_cmd;
      lint_cmd;
      infer_cmd;
      prove_cmd;
      cert_cmd;
      run_cmd;
      explore_cmd;
      taint_cmd;
      ni_cmd;
      batch_cmd;
      modsys_cmd;
      fuzz_cmd;
      serve_cmd;
      client_cmd;
      loadgen_cmd;
      store_cmd;
      lattice_cmd;
      gen_cmd;
      fmt_cmd;
      rules_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
